// Command loostrace renders the span streams written by loosweep and
// loosimd tracing (-trace span.jsonl) into per-job waterfalls and a
// fleet-wide stage attribution.
//
// Usage:
//
//	loosweep -selfcheck -trace spans.jsonl && loostrace spans.jsonl
//	loostrace -top 3 spans.jsonl     # only the 3 slowest traces' waterfalls
//	loostrace -json spans.jsonl      # machine-readable fleet summary
//	cat a.jsonl b.jsonl | loostrace -
//
// Coordinator and backend spans that share a trace ID are stitched into one
// tree: concatenating the two sides' span files (the trace IDs and span IDs
// are deterministic, so the files agree) yields complete submit-to-cycle-loop
// waterfalls. A span whose parent is absent from the input renders as an
// extra root, so a backend-only file still produces a readable forest.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"loosesim/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loostrace: ")

	var (
		asJSON  = flag.Bool("json", false, "emit the fleet summary as JSON instead of text")
		top     = flag.Int("top", 0, "waterfalls for only the N slowest traces (0 = all)")
		summary = flag.Bool("summary", false, "suppress waterfalls; fleet summary only")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: loostrace [-json] [-top N] [-summary] <spans.jsonl | ->")
	}

	spans, err := readSpans(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	if len(spans) == 0 {
		log.Fatal("no spans in input")
	}
	traces := buildTraces(spans)
	fleet := summarize(traces)

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(fleet); err != nil {
			log.Fatal(err)
		}
		return
	}

	w := bufio.NewWriter(os.Stdout)
	if !*summary {
		shown := traces
		if *top > 0 && *top < len(traces) {
			byDur := make([]*traceTree, len(traces))
			copy(byDur, traces)
			sort.SliceStable(byDur, func(i, j int) bool { return byDur[i].duration() > byDur[j].duration() })
			shown = byDur[:*top]
		}
		for _, tt := range shown {
			printWaterfall(w, tt)
		}
	}
	printSummary(w, fleet)
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
}

// readSpans parses one span per JSONL line from the named file or stdin.
func readSpans(name string) ([]trace.Span, error) {
	var r io.Reader = os.Stdin
	if name != "-" {
		f, err := os.Open(name)
		if err != nil {
			return nil, err
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Printf("close %s: %v", name, err)
			}
		}()
		r = f
	}
	var spans []trace.Span
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var s trace.Span
		if err := json.Unmarshal([]byte(text), &s); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		if s.Trace == "" || s.Span == 0 {
			return nil, fmt.Errorf("line %d: span missing trace or span ID", line)
		}
		spans = append(spans, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return spans, nil
}

// node is one span plus its resolved children, ordered by span ID (the IDs
// encode the tree path, so sibling order is creation order).
type node struct {
	span     trace.Span
	children []*node
}

// traceTree is all of one trace's spans stitched into a forest (a single
// tree when the input holds both sides of the job).
type traceTree struct {
	id    string
	roots []*node
	nodes int
}

// duration is the whole trace's wall span: max end minus min start over
// every member span. Zero when the stream was recorded with no clock.
func (t *traceTree) duration() time.Duration {
	var lo, hi int64
	first := true
	var walk func(n *node)
	walk = func(n *node) {
		if first || n.span.Start < lo {
			lo = n.span.Start
		}
		if first || n.span.End > hi {
			hi = n.span.End
		}
		first = false
		for _, c := range n.children {
			walk(c)
		}
	}
	for _, r := range t.roots {
		walk(r)
	}
	return time.Duration(hi - lo)
}

// start is the trace's earliest span start.
func (t *traceTree) start() int64 {
	lo := int64(0)
	first := true
	var walk func(n *node)
	walk = func(n *node) {
		if first || n.span.Start < lo {
			lo = n.span.Start
		}
		first = false
		for _, c := range n.children {
			walk(c)
		}
	}
	for _, r := range t.roots {
		walk(r)
	}
	return lo
}

// buildTraces groups spans by trace ID and links parents to children.
// Traces come back in first-appearance order of the input, which for
// sorted span files (trace.Writer output) is canonical order.
func buildTraces(spans []trace.Span) []*traceTree {
	byTrace := make(map[string][]trace.Span)
	var order []string
	for _, s := range spans {
		if _, seen := byTrace[s.Trace]; !seen {
			order = append(order, s.Trace)
		}
		byTrace[s.Trace] = append(byTrace[s.Trace], s)
	}
	out := make([]*traceTree, 0, len(order))
	for _, id := range order {
		members := byTrace[id]
		sort.SliceStable(members, func(i, j int) bool {
			return pathLess(members[i].Span, members[j].Span)
		})
		nodes := make(map[uint64]*node, len(members))
		tt := &traceTree{id: id}
		for _, s := range members {
			if _, dup := nodes[s.Span]; dup {
				// Two runs concatenated into one file: keep the first copy.
				continue
			}
			n := &node{span: s}
			nodes[s.Span] = n
			if parent, ok := nodes[s.Parent]; ok && s.Parent != 0 {
				parent.children = append(parent.children, n)
			} else {
				tt.roots = append(tt.roots, n)
			}
		}
		tt.nodes = len(nodes)
		out = append(out, tt)
	}
	return out
}

// pathLess orders span IDs by their tree path (depth-first order), not
// numerically: 1 < 257 < 257*256+1 < 258.
func pathLess(a, b uint64) bool {
	pa, pb := idPath(a), idPath(b)
	for i := 0; i < len(pa) && i < len(pb); i++ {
		if pa[i] != pb[i] {
			return pa[i] < pb[i]
		}
	}
	return len(pa) < len(pb)
}

// idPath decomposes a tree-path span ID into its per-level indices.
func idPath(id uint64) []byte {
	var rev [8]byte
	n := 0
	for id > 0 {
		rev[n] = byte(id & 0xff)
		id >>= 8
		n++
	}
	path := make([]byte, n)
	for i := 0; i < n; i++ {
		path[i] = rev[n-1-i]
	}
	return path
}

// printWaterfall renders one trace as an indented span tree with offsets
// relative to the trace start.
func printWaterfall(w io.Writer, tt *traceTree) {
	key := ""
	for _, r := range tt.roots {
		if r.span.Key != "" {
			key = r.span.Key
			break
		}
	}
	header := fmt.Sprintf("trace %s", tt.id)
	if key != "" {
		header += "  key=" + shorten(key, 24)
	}
	if d := tt.duration(); d > 0 {
		header += fmt.Sprintf("  %s", d)
	}
	fmt.Fprintln(w, header)
	base := tt.start()
	var walk func(n *node, depth int)
	walk = func(n *node, depth int) {
		s := n.span
		label := s.Name
		if s.Target != "" {
			label += " → " + s.Target
		}
		if s.Winner {
			label += " (winner)"
		}
		width := 46 - 2*depth
		if width < len(label) {
			width = len(label)
		}
		line := fmt.Sprintf("%s%-*s", strings.Repeat("  ", depth+1), width, label)
		if s.End > s.Start || s.Start > base {
			line += fmt.Sprintf("  +%-10s %-10s", time.Duration(s.Start-base), time.Duration(s.End-s.Start))
		}
		if s.Status != "" {
			line += "  " + s.Status
		}
		if s.Detail != "" {
			line += "  (" + shorten(s.Detail, 40) + ")"
		}
		fmt.Fprintln(w, strings.TrimRight(line, " "))
		for _, c := range n.children {
			walk(c, depth+1)
		}
	}
	for _, r := range tt.roots {
		walk(r, 0)
	}
	fmt.Fprintln(w)
}

func shorten(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// StageStat aggregates one span name across the fleet. SelfNS is the
// stage's own time: duration minus time covered by its children, clamped at
// zero — the quantity that sums to total trace time without double
// counting, so it is what attributes a slow sweep to a stage.
type StageStat struct {
	Name    string `json:"name"`
	Count   int    `json:"count"`
	Errors  int    `json:"errors"`
	TotalNS int64  `json:"total_ns"`
	SelfNS  int64  `json:"self_ns"`
}

// PathStat is one distinct critical path and how many traces took it.
type PathStat struct {
	Path   string `json:"path"`
	Count  int    `json:"count"`
	MeanNS int64  `json:"mean_ns"`
}

// Fleet is the whole input's summary.
type Fleet struct {
	Traces        int         `json:"traces"`
	Spans         int         `json:"spans"`
	Stages        []StageStat `json:"stages"`
	CriticalPaths []PathStat  `json:"critical_paths"`
}

// summarize computes the fleet-wide stage attribution and critical paths.
func summarize(traces []*traceTree) Fleet {
	stageIdx := make(map[string]int)
	var stages []StageStat
	pathIdx := make(map[string]int)
	var paths []PathStat
	fleet := Fleet{Traces: len(traces)}

	for _, tt := range traces {
		fleet.Spans += tt.nodes
		var walk func(n *node)
		walk = func(n *node) {
			i, ok := stageIdx[n.span.Name]
			if !ok {
				i = len(stages)
				stageIdx[n.span.Name] = i
				stages = append(stages, StageStat{Name: n.span.Name})
			}
			dur := int64(n.span.Duration())
			var covered int64
			for _, c := range n.children {
				covered += int64(c.span.Duration())
				walk(c)
			}
			self := dur - covered
			if self < 0 {
				self = 0 // concurrent children (hedges) overlap the parent
			}
			stages[i].Count++
			stages[i].TotalNS += dur
			stages[i].SelfNS += self
			if n.span.Status == "error" || n.span.Status == "failed" {
				stages[i].Errors++
			}
		}
		for _, r := range tt.roots {
			walk(r)
		}

		p := criticalPath(tt)
		j, ok := pathIdx[p]
		if !ok {
			j = len(paths)
			pathIdx[p] = j
			paths = append(paths, PathStat{Path: p})
		}
		paths[j].Count++
		paths[j].MeanNS += int64(tt.duration()) // sum now, divide below
	}
	for i := range paths {
		if paths[i].Count > 0 {
			paths[i].MeanNS /= int64(paths[i].Count)
		}
	}
	sort.SliceStable(stages, func(i, j int) bool {
		if stages[i].SelfNS != stages[j].SelfNS {
			return stages[i].SelfNS > stages[j].SelfNS
		}
		return stages[i].Name < stages[j].Name
	})
	sort.SliceStable(paths, func(i, j int) bool {
		if paths[i].Count != paths[j].Count {
			return paths[i].Count > paths[j].Count
		}
		return paths[i].Path < paths[j].Path
	})
	fleet.Stages = stages
	fleet.CriticalPaths = paths
	return fleet
}

// criticalPath walks each root toward a leaf, at every level following the
// winning child if one is marked, otherwise the longest-running child
// (lowest span ID on ties, for determinism under a nil clock), and joins
// the stage names.
func criticalPath(tt *traceTree) string {
	var names []string
	for _, r := range tt.roots {
		n := r
		for {
			names = append(names, n.span.Name)
			if len(n.children) == 0 {
				break
			}
			best := n.children[0]
			for _, c := range n.children[1:] {
				if c.span.Winner && !best.span.Winner {
					best = c
					continue
				}
				if best.span.Winner {
					continue
				}
				if c.span.Duration() > best.span.Duration() {
					best = c
				}
			}
			n = best
		}
	}
	return strings.Join(names, " → ")
}

// printSummary renders the fleet summary as text tables.
func printSummary(w io.Writer, f Fleet) {
	fmt.Fprintf(w, "fleet: %d traces, %d spans\n\n", f.Traces, f.Spans)
	fmt.Fprintf(w, "%-12s %8s %8s %14s %14s\n", "stage", "spans", "errors", "total", "self")
	for _, s := range f.Stages {
		fmt.Fprintf(w, "%-12s %8d %8d %14s %14s\n",
			s.Name, s.Count, s.Errors, time.Duration(s.TotalNS), time.Duration(s.SelfNS))
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "critical paths:")
	for _, p := range f.CriticalPaths {
		fmt.Fprintf(w, "  %4d×  %-12s %s\n", p.Count, time.Duration(p.MeanNS), p.Path)
	}
}
