// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -fig 4          # Figure 4 only
//	experiments -fig all        # every figure
//	experiments -ablation crc   # one ablation
//	experiments -quick          # short runs for a fast look
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"loosesim/internal/experiments"
	"loosesim/internal/pipeline"
	"loosesim/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	var (
		asJSON   = flag.Bool("json", false, "emit tables as JSON")
		fig      = flag.String("fig", "", "figure to regenerate: 4, 5, 6, 8, 9, or all")
		ablation = flag.String("ablation", "", "ablation to run: recovery, crc, fwd, iqpressure, crcpolicy, monolithic, memdep, predictor, loops, or all")
		quick    = flag.Bool("quick", false, "short runs (smoke-test quality)")
		measure  = flag.Uint64("inst", 0, "override measured instructions per run")
		seed     = flag.Int64("seed", 1, "simulation seed")
		cacheDir = flag.String("cache", "", "content-addressed result cache directory (shareable with loosimd -cache)")
	)
	flag.Parse()

	if *fig == "" && *ablation == "" {
		flag.Usage()
		os.Exit(2)
	}

	opt := experiments.DefaultOptions()
	if *quick {
		opt = experiments.QuickOptions()
	}
	if *measure > 0 {
		opt.Measure = *measure
	}
	opt.Seed = *seed

	var cstats serve.CacheStats
	if *cacheDir != "" {
		store, err := serve.NewDirStore(*cacheDir)
		if err != nil {
			log.Fatal(err)
		}
		opt.Runner = func(cfgs []pipeline.Config) ([]*pipeline.Result, error) {
			return serve.RunAllCached(context.Background(), store, &cstats, cfgs)
		}
	}

	type job struct {
		name string
		run  func(experiments.Options) (*experiments.Table, error)
	}
	var jobs []job
	addFig := func(name string, f func(experiments.Options) (*experiments.Table, error)) {
		jobs = append(jobs, job{name, f})
	}
	switch *fig {
	case "":
	case "4":
		addFig("fig4", experiments.Fig4)
	case "5":
		addFig("fig5", experiments.Fig5)
	case "6":
		addFig("fig6", experiments.Fig6)
	case "8":
		addFig("fig8", experiments.Fig8)
	case "9":
		addFig("fig9", experiments.Fig9)
	case "all":
		addFig("fig4", experiments.Fig4)
		addFig("fig5", experiments.Fig5)
		addFig("fig6", experiments.Fig6)
		addFig("fig8", experiments.Fig8)
		addFig("fig9", experiments.Fig9)
	default:
		log.Fatalf("unknown figure %q", *fig)
	}
	switch *ablation {
	case "":
	case "recovery":
		addFig("recovery", experiments.AblationLoadRecovery)
	case "crc":
		addFig("crc", experiments.AblationCRC)
	case "fwd":
		addFig("fwd", experiments.AblationForwardDepth)
	case "iqpressure":
		addFig("iqpressure", experiments.AblationIQPressure)
	case "crcpolicy":
		addFig("crcpolicy", experiments.AblationCRCPolicy)
	case "monolithic":
		addFig("monolithic", experiments.AblationMonolithic)
	case "memdep":
		addFig("memdep", experiments.AblationMemDep)
	case "predictor":
		addFig("predictor", experiments.AblationPredictor)
	case "loops":
		fmt.Println(experiments.LoopDelayCheck())
	case "all":
		addFig("recovery", experiments.AblationLoadRecovery)
		addFig("crc", experiments.AblationCRC)
		addFig("fwd", experiments.AblationForwardDepth)
		addFig("iqpressure", experiments.AblationIQPressure)
		addFig("crcpolicy", experiments.AblationCRCPolicy)
		addFig("monolithic", experiments.AblationMonolithic)
		addFig("memdep", experiments.AblationMemDep)
		addFig("predictor", experiments.AblationPredictor)
		fmt.Println(experiments.LoopDelayCheck())
	default:
		log.Fatalf("unknown ablation %q", *ablation)
	}

	for _, j := range jobs {
		start := time.Now()
		t, err := j.run(opt)
		if err != nil {
			log.Fatalf("%s: %v", j.name, err)
		}
		wall := time.Since(start).Seconds()
		if *asJSON {
			// Wrap each table with its name and host-side cost so a sweep's
			// output is self-describing and throughput regressions show up
			// in the archived reports.
			report := struct {
				Name        string
				HostSeconds float64
				Table       *experiments.Table
			}{j.name, wall, t}
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(report); err != nil {
				log.Fatal(err)
			}
			continue
		}
		fmt.Println(t)
		fmt.Printf("[%s took %.1fs]\n\n", j.name, wall)
	}
	if *cacheDir != "" {
		fmt.Printf("[cache: %d hits, %d misses]\n", cstats.Hits(), cstats.Misses())
	}
}
