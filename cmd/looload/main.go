// Command looload is the open-loop fleet load generator: it expands a
// multi-client traffic spec (per-client rate fractions, Poisson or gamma
// bursty interarrivals, job mixes, SLO classes — all seeded) into a
// deterministic arrival schedule and replays it either against the
// built-in discrete-event fleet model (the default: instant, byte-
// reproducible, built on the same admission-control core loosimd runs) or
// against live loosimd nodes with -target. Reports show per-client
// latency percentiles, SLO attainment, and the offered-load-vs-goodput
// saturation curve.
//
//	looload                              # model replay of the built-in spec
//	looload -spec traffic.json -scale 2  # model replay at twice the spec rate
//	looload -curve 0.25,0.5,1,2,4        # saturation curve over rate scales
//	looload -target http://host:8087     # live open-loop replay
//	looload -printspec > traffic.json    # dump the built-in spec to edit
//	looload -selfcheck                   # CI: determinism + live loopback smoke
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"loosesim/internal/load"
	"loosesim/internal/serve"
	"loosesim/internal/stats"
)

func main() {
	specPath := flag.String("spec", "", "traffic spec JSON (default: built-in spec)")
	printSpec := flag.Bool("printspec", false, "print the spec JSON and exit")
	seed := flag.Int64("seed", 0, "override the spec seed (0 = keep the spec's)")
	scale := flag.Float64("scale", 1, "multiply the spec's offered rate")
	nodes := flag.Int("nodes", 0, "modeled fleet nodes (0 = default)")
	workers := flag.Int("workers", 0, "modeled workers per node (0 = default)")
	queue := flag.Int("queue", 0, "modeled queue depth per node (0 = default)")
	clientCap := flag.Int("clientcap", 0, "modeled per-client queue cap (0 = none)")
	curve := flag.String("curve", "", "comma-separated rate scales for a saturation curve (model mode)")
	target := flag.String("target", "", "comma-separated loosimd base URLs for live replay")
	selfcheck := flag.Bool("selfcheck", false, "verify determinism and drive a loopback fleet, then exit")
	flag.Parse()

	if *selfcheck {
		if err := runSelfcheck(os.Stdout); err != nil {
			log.Fatalf("looload: selfcheck: %v", err)
		}
		fmt.Println("looload selfcheck ok")
		return
	}

	spec := load.DefaultSpec()
	if *specPath != "" {
		data, err := os.ReadFile(*specPath)
		if err != nil {
			log.Fatalf("looload: %v", err)
		}
		spec, err = load.ParseSpec(data)
		if err != nil {
			log.Fatalf("looload: %v", err)
		}
	}
	if *seed != 0 {
		spec.Seed = *seed
	}
	if *scale <= 0 {
		log.Fatalf("looload: -scale %v must be positive", *scale)
	}
	spec.Rate *= *scale

	if *printSpec {
		out, err := json.MarshalIndent(spec, "", "  ")
		if err != nil {
			log.Fatalf("looload: %v", err)
		}
		fmt.Println(string(out))
		return
	}

	cfg := load.DefaultFleetConfig()
	if *nodes > 0 {
		cfg.Nodes = *nodes
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}
	if *queue > 0 {
		cfg.QueueDepth = *queue
	}
	cfg.ClientCap = *clientCap

	switch {
	case *curve != "":
		scales, err := parseScales(*curve)
		if err != nil {
			log.Fatalf("looload: %v", err)
		}
		points, err := load.SaturationCurve(spec, cfg, scales)
		if err != nil {
			log.Fatalf("looload: %v", err)
		}
		if err := load.WriteSaturation(os.Stdout, points); err != nil {
			log.Fatalf("looload: %v", err)
		}
	case *target != "":
		targets := strings.Split(*target, ",")
		for i := range targets {
			targets[i] = strings.TrimSuffix(strings.TrimSpace(targets[i]), "/")
		}
		if err := runLive(os.Stdout, spec, targets); err != nil {
			log.Fatalf("looload: %v", err)
		}
	default:
		arrivals, err := load.Generate(spec)
		if err != nil {
			log.Fatalf("looload: %v", err)
		}
		res, err := load.RunModel(spec, arrivals, cfg)
		if err != nil {
			log.Fatalf("looload: %v", err)
		}
		if err := load.WriteReport(os.Stdout, spec, res); err != nil {
			log.Fatalf("looload: %v", err)
		}
	}
}

// parseScales decodes "-curve 0.25,0.5,1,2".
func parseScales(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	scales := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad -curve entry %q: %w", p, err)
		}
		scales = append(scales, v)
	}
	return scales, nil
}

// runLive replays the schedule open-loop against live backends: every
// arrival fires at its scheduled wall-time offset regardless of how the
// fleet is coping — that non-reaction to slowdown is what makes the load
// open-loop and is exactly how it exposes queue collapse. Arrivals shard
// over the targets round-robin by sequence number.
func runLive(w io.Writer, spec load.Spec, targets []string) error {
	arrivals, err := load.Generate(spec)
	if err != nil {
		return err
	}
	res := &load.Result{
		Config:    load.FleetConfig{Nodes: len(targets)},
		PerClient: make([]load.ClientResult, len(spec.Clients)),
	}
	hists := make([]*stats.Histogram, len(spec.Clients))
	for i := range spec.Clients {
		hists[i] = stats.NewHistogram(60_000)
		res.PerClient[i] = load.ClientResult{Name: spec.Clients[i].Name, Latency: hists[i]}
	}

	client := &http.Client{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for i := range arrivals {
		a := arrivals[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(time.Until(start.Add(a.At)))
			outcome, latency := submitLive(client, targets[a.Seq%len(targets)], spec, a)
			mu.Lock()
			defer mu.Unlock()
			cr := &res.PerClient[a.Client]
			cr.Submitted++
			res.Totals.Submitted++
			switch outcome {
			case liveCompleted:
				cr.Completed++
				res.Totals.Completed++
				hists[a.Client].Add(int(latency / time.Millisecond))
			case liveShed:
				cr.Shed++
				res.Totals.Shed++
			case liveRejected:
				cr.Rejected++
				res.Totals.Rejected++
			default:
				cr.Failed++
				res.Totals.Failed++
			}
			if end := a.At + latency; end > res.Makespan {
				// simlint:ignore nondet-taint live replay measures real wall-clock latency by design; the deterministic path is RunModel
				res.Makespan = end
			}
		}()
	}
	wg.Wait()
	if err := res.Check(); err != nil {
		return err
	}
	return load.WriteReport(w, spec, res)
}

type liveOutcome int

const (
	liveCompleted liveOutcome = iota
	liveShed
	liveRejected
	liveFailed
)

// submitLive posts one arrival's job with ?wait=1 and classifies the
// outcome. A 429 whose body mentions shedding counts as shed, any other
// 429 as rejected; transport errors and failed jobs count as failed. The
// client does not retry: open-loop load measures the fleet as offered,
// and the Retry-After hint is for closed-loop clients like dispatch.
func submitLive(client *http.Client, target string, spec load.Spec, a load.Arrival) (liveOutcome, time.Duration) {
	cs := &spec.Clients[a.Client]
	job := cs.Mix[a.Mix].Job
	job.Client = cs.Name
	job.SLO = cs.SLO
	body, err := json.Marshal(job)
	if err != nil {
		return liveFailed, 0
	}
	begin := time.Now()
	resp, err := client.Post(target+"/api/v1/jobs?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		return liveFailed, 0
	}
	latency := time.Since(begin)
	payload, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if cerr := resp.Body.Close(); cerr != nil {
		return liveFailed, latency
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		if bytes.Contains(payload, []byte("shed")) {
			return liveShed, latency
		}
		return liveRejected, latency
	}
	if resp.StatusCode/100 != 2 {
		return liveFailed, latency
	}
	var st serve.Status
	if err := json.Unmarshal(payload, &st); err != nil || st.State != serve.StateDone {
		return liveFailed, latency
	}
	return liveCompleted, latency
}

// runSelfcheck is the CI gate: the model replay and saturation curve must
// be byte-identical across two runs of the same seeded spec and satisfy
// the conservation law, and a live loopback fleet must serve the same
// admission semantics over real HTTP — including 429s that carry
// Retry-After and /metrics that conserve jobs exactly.
func runSelfcheck(w io.Writer) error {
	spec := load.DefaultSpec()
	cfg := load.FleetConfig{Nodes: 2, Workers: 1, QueueDepth: 8, ClientCap: 6}

	render := func() (string, error) {
		arrivals, err := load.Generate(spec)
		if err != nil {
			return "", err
		}
		res, err := load.RunModel(spec, arrivals, cfg)
		if err != nil {
			return "", err
		}
		if err := res.Check(); err != nil {
			return "", err
		}
		var buf bytes.Buffer
		if err := load.WriteReport(&buf, spec, res); err != nil {
			return "", err
		}
		points, err := load.SaturationCurve(spec, cfg, []float64{0.5, 1, 2})
		if err != nil {
			return "", err
		}
		if err := load.WriteSaturation(&buf, points); err != nil {
			return "", err
		}
		return buf.String(), nil
	}
	first, err := render()
	if err != nil {
		return err
	}
	second, err := render()
	if err != nil {
		return err
	}
	if first != second {
		return fmt.Errorf("model replay is not deterministic:\n--- first\n%s--- second\n%s", first, second)
	}
	if _, err := io.WriteString(w, first); err != nil {
		return err
	}

	return loopbackSmoke()
}

// loopbackSmoke boots one real serve.Server on a loopback port and drives
// the admission-control surface looload depends on: queue-full and shed
// 429s with Retry-After, cancellation returning queue capacity, and a
// /metrics snapshot that conserves jobs.
func loopbackSmoke() error {
	srv := serve.New(serve.Options{
		Workers:    1,
		QueueDepth: 2,
		RetryAfter: 2 * time.Second,
		Now:        time.Now,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() {
		if serr := hs.Serve(ln); serr != nil && !errors.Is(serr, http.ErrServerClosed) {
			log.Printf("looload: smoke server: %v", serr)
		}
	}()
	base := "http://" + ln.Addr().String()
	longJob := func(seed int64, slo string) []byte {
		warmup := uint64(0)
		b, _ := json.Marshal(serve.JobSpec{
			Bench: "gcc", Seed: seed, Warmup: &warmup, Inst: 1 << 40,
			NoCache: true, Client: "smoke", SLO: slo,
		})
		return b
	}
	submit := func(body []byte) (*http.Response, serve.Status, error) {
		resp, err := http.Post(base+"/api/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, serve.Status{}, err
		}
		payload, rerr := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		if cerr := resp.Body.Close(); rerr == nil {
			rerr = cerr
		}
		if rerr != nil {
			return nil, serve.Status{}, rerr
		}
		var st serve.Status
		if resp.StatusCode/100 == 2 {
			if err := json.Unmarshal(payload, &st); err != nil {
				return nil, serve.Status{}, err
			}
		}
		return resp, st, nil
	}

	// Pin the sole worker on a long job; poll until it is running so the
	// queue occupancy below is exact.
	resp, st, err := submit(longJob(1, ""))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("smoke submit 1: status %d, want 202", resp.StatusCode)
	}
	ids := []string{st.ID}
	deadline := time.Now().Add(10 * time.Second)
	for {
		gr, err := http.Get(base + "/api/v1/jobs/" + st.ID)
		if err != nil {
			return err
		}
		var got serve.Status
		derr := json.NewDecoder(gr.Body).Decode(&got)
		if cerr := gr.Body.Close(); derr == nil {
			derr = cerr
		}
		if derr != nil {
			return derr
		}
		if got.State == serve.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("smoke blocker stuck in %q", got.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// One queued job: occupancy 1, which is exactly batch's shed limit
	// (ceil(0.5*2)) while interactive still has room.
	resp, st, err = submit(longJob(2, ""))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("smoke submit 2: status %d, want 202", resp.StatusCode)
	}
	ids = append(ids, st.ID)

	// Batch is shed with the configured Retry-After.
	resp, _, err = submit(longJob(5, "batch"))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		return fmt.Errorf("smoke shed status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		return fmt.Errorf("smoke shed Retry-After %q, want \"2\"", got)
	}

	// Interactive still fits: fill the queue to its hard bound.
	resp, st, err = submit(longJob(3, ""))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("smoke submit 3: status %d, want 202", resp.StatusCode)
	}
	ids = append(ids, st.ID)

	// Full queue: 429 with the configured Retry-After, any class.
	resp, _, err = submit(longJob(4, ""))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		return fmt.Errorf("smoke queue-full status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		return fmt.Errorf("smoke queue-full Retry-After %q, want \"2\"", got)
	}

	// Cancel everything; cancelled queued jobs must return their capacity.
	for _, id := range ids {
		req, err := http.NewRequest(http.MethodDelete, base+"/api/v1/jobs/"+id, nil)
		if err != nil {
			return err
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		if cerr := resp.Body.Close(); cerr != nil {
			return cerr
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("smoke cancel %s: status %d", id, resp.StatusCode)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		return err
	}
	if err := srv.Drain(ctx); err != nil {
		return err
	}

	// The drained server's ledger must conserve exactly.
	m := srv.Metrics()
	sum := m.Jobs.Completed + m.Jobs.Failed + m.Jobs.Cancelled + m.Jobs.Rejected + m.Jobs.Shed
	if m.Jobs.Submitted != sum {
		return fmt.Errorf("smoke conservation violated: %+v", m.Jobs)
	}
	if m.Jobs.Rejected != 1 || m.Jobs.Shed != 1 || m.Jobs.Cancelled != 3 {
		return fmt.Errorf("smoke tallies rejected=%d shed=%d cancelled=%d, want 1/1/3", m.Jobs.Rejected, m.Jobs.Shed, m.Jobs.Cancelled)
	}
	if m.QueueDepth != 0 {
		return fmt.Errorf("smoke queue depth %d after drain, want 0", m.QueueDepth)
	}
	var prom bytes.Buffer
	if err := serve.WriteProm(&prom, m); err != nil {
		return err
	}
	if err := serve.CheckPromText(prom.Bytes()); err != nil {
		return err
	}
	for _, want := range []string{`loosim_jobs_total{state="shed"} 1`, `loosim_client_jobs_total{client="smoke",state="cancelled"} 3`} {
		if !strings.Contains(prom.String(), want) {
			return fmt.Errorf("smoke prom output missing %q", want)
		}
	}
	return nil
}
