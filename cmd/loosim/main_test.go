package main

import (
	"errors"
	"strings"
	"testing"

	"loosesim/internal/obs"
	"loosesim/internal/pipeline"
)

// failAfter fails every write after the first n, mirroring the obs test
// double: it simulates a destination that fills up mid-stream.
type failAfter struct {
	n int
}

func (w *failAfter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("disk full")
	}
	w.n--
	return len(p), nil
}

// TestVerifyStreamsFinalFlush is the end of the obs error-latching audit:
// an event-stream error that latches only during the final Flush — after
// the run, before reporting — must still surface from verifyStreams, which
// main turns into log.Fatal and therefore a nonzero exit.
func TestVerifyStreamsFinalFlush(t *testing.T) {
	evw := obs.NewRingWriter(&failAfter{n: 0}, 100)
	evw.Event(obs.Event{Cycle: 1}) // buffered; the write happens in Flush
	err := verifyStreams(evw, nil, nil)
	if err == nil {
		t.Fatal("final-flush event error must fail verification")
	}
	if !strings.Contains(err.Error(), "event stream truncated") {
		t.Errorf("error %q does not name the event stream", err)
	}
}

func TestVerifyStreamsIntervalError(t *testing.T) {
	ivw := obs.NewIntervalCSV(&failAfter{n: 1}) // header ok, row fails
	ivw.Interval(obs.Interval{Index: 0})
	err := verifyStreams(nil, ivw, nil)
	if err == nil {
		t.Fatal("interval row error must fail verification")
	}
	if !strings.Contains(err.Error(), "interval stream truncated") {
		t.Errorf("error %q does not name the interval stream", err)
	}

	jw := obs.NewIntervalJSONL(&failAfter{n: 0})
	jw.Interval(obs.Interval{Index: 0})
	if verifyStreams(nil, jw, nil) == nil {
		t.Fatal("JSONL interval error must fail verification")
	}
}

func TestVerifyStreamsTracerError(t *testing.T) {
	tr := pipeline.NewTracer(&failAfter{n: 0}, 0) // header write fails
	err := verifyStreams(nil, nil, tr)
	if err == nil {
		t.Fatal("tracer error must fail verification")
	}
	if !strings.Contains(err.Error(), "trace truncated") {
		t.Errorf("error %q does not name the trace", err)
	}
}

func TestVerifyStreamsCleanAndNil(t *testing.T) {
	if err := verifyStreams(nil, nil, nil); err != nil {
		t.Fatalf("no streams attached must verify clean: %v", err)
	}
	var buf strings.Builder
	evw := obs.NewRingWriter(&buf, 0)
	evw.Event(obs.Event{Cycle: 1})
	ivw := obs.NewIntervalCSV(&buf)
	ivw.Interval(obs.Interval{Index: 0})
	if err := verifyStreams(evw, ivw, nil); err != nil {
		t.Fatalf("healthy streams must verify clean: %v", err)
	}
}
