// Command loosim runs one simulation of the loose-loops machine and prints
// its statistics.
//
// Usage:
//
//	loosim -bench gcc -deciq 5 -iqex 5 -regread 3
//	loosim -bench swim -dra
//	loosim -bench apsi-swim -load stall -inst 1000000
//	loosim -bench apsi -dra -intervals out.csv -events out.jsonl
//	loosim -bench gcc -sample 20 -window 2000
//	loosim -validate -inst 120000 -warmup 40000
//
// The observability flags attach internal/obs probes: -intervals writes a
// per-interval time series (CSV, or JSONL when the path ends in .jsonl or
// .json), -events writes the loop-event stream as JSONL. Aggregate either
// file with cmd/loopstat. Probes never change simulation outcomes.
//
// -sample N runs a SMARTS-style sampled simulation (internal/sample): a
// functional-warming chain carries cache and predictor state between N
// measurement windows of -window instructions, each preceded by a
// -samplewarm detailed warmup, and the merged estimate is reported with
// per-metric confidence intervals. -validate runs sampled-vs-full over
// the paper's figure grid and exits nonzero if any metric leaves its
// declared error bound (see internal/sample.Metrics).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"loosesim/internal/obs"
	"loosesim/internal/pipeline"
	"loosesim/internal/sample"
	"loosesim/internal/workload"
)

// hostProfile is the simulator's self-measured throughput: simulated work
// per host-second over the whole run (warmup included). This is the one
// place wall-clock time is allowed — internal/ stays pure under simlint's
// noclock analyzer.
type hostProfile struct {
	WallSeconds  float64
	KIPS         float64 // retired kilo-instructions per host second
	CyclesPerSec float64 // simulated cycles per host second
}

func profileHost(res *pipeline.Result, wall time.Duration) hostProfile {
	h := hostProfile{WallSeconds: wall.Seconds()}
	if h.WallSeconds > 0 {
		h.KIPS = float64(res.TotalRetired) / 1000 / h.WallSeconds
		h.CyclesPerSec = float64(res.TotalCycles) / h.WallSeconds
	}
	return h
}

// printJSON emits a machine-readable report of the run.
func printJSON(cfg pipeline.Config, res *pipeline.Result, host hostProfile) {
	pr, fw, crc, miss := res.OperandShare()
	report := struct {
		Benchmark string
		DecIQLat  int
		IQExLat   int
		RegRead   int
		DRA       bool
		LoadPol   string
		MemDepPol string
		IPC       float64
		Counters  pipeline.Counters
		Cycles    pipeline.CycleStack
		Operand   struct{ PreRead, Forwarded, CRC, Miss float64 }
		IQ        struct{ Occupancy, Retained float64 }
		PerThread []uint64
		Host      hostProfile
	}{
		Benchmark: res.Benchmark,
		DecIQLat:  cfg.DecIQLat,
		IQExLat:   cfg.IQExLat,
		RegRead:   cfg.RegReadLat,
		DRA:       cfg.UseDRA,
		LoadPol:   cfg.LoadPolicy.String(),
		MemDepPol: cfg.MemDep.String(),
		IPC:       res.IPC(),
		Counters:  res.Counters,
		Cycles:    res.Cycles,
		PerThread: res.RetiredPerThread,
		Host:      host,
	}
	report.Operand.PreRead, report.Operand.Forwarded, report.Operand.CRC, report.Operand.Miss = pr, fw, crc, miss
	report.IQ.Occupancy, report.IQ.Retained = res.IQOccupancy, res.IQRetained
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		log.Fatal(err)
	}
}

// intervalWriter is either of obs's interval writers, by error contract.
type intervalWriter interface {
	obs.IntervalSink
	Err() error
}

// verifyStreams checks every observability output for a latched error
// once the run completes. Any truncated stream — including an error that
// latches only during the final Flush, after the last mid-run batch — must
// fail the run: main exits nonzero on a non-nil return. Nil arguments are
// streams that were never attached.
func verifyStreams(evw *obs.RingWriter, ivw intervalWriter, tr *pipeline.Tracer) error {
	if evw != nil {
		if err := evw.Flush(); err != nil {
			return fmt.Errorf("event stream truncated: %w", err)
		}
	}
	if ivw != nil {
		if err := ivw.Err(); err != nil {
			return fmt.Errorf("interval stream truncated: %w", err)
		}
	}
	if tr != nil {
		if err := tr.Err(); err != nil {
			return fmt.Errorf("trace truncated after %d records: %w", tr.Count(), err)
		}
	}
	return nil
}

// runSampled runs one sampled simulation and reports the merged estimate
// with per-metric confidence intervals.
func runSampled(cfg pipeline.Config, o sample.Options, asJSON bool) {
	start := time.Now()
	est, err := sample.Run(context.Background(), cfg, o)
	if err != nil {
		log.Fatal(err)
	}
	wall := time.Since(start)
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(est); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("sampled          %d windows x %d instructions (detailed warmup %d), extrapolated to %d\n",
		est.Windows, est.WindowInstructions, o.DetailedWarmup, est.TotalInstructions)
	fmt.Printf("measured         %d instructions in %d cycles (scale %.1fx)\n",
		est.Counters.Retired, est.Counters.Cycles, est.Scale())
	for _, met := range sample.Metrics() {
		iv := est.Metrics[met.Name]
		fmt.Printf("%-17s %.4f  mean %.4f +/- %.4f (95%% CI, %.1f%% rel)\n",
			met.Name, met.Eval(est.Counters), iv.Mean, iv.CI95, 100*iv.RelCI())
	}
	fmt.Printf("cycle stack      %s\n", est.Stack)
	fmt.Printf("wall             %.2fs\n", wall.Seconds())
}

// runValidate runs sampled-vs-full convergence over the paper's figure
// grid — every single-threaded benchmark plus the m88-comp SMT pair, base
// and DRA machines at the given register-read latency — and exits nonzero
// if any metric leaves its declared error bound. Run lengths follow the
// -inst/-warmup flags, so a reduced validation (as in CI) is just shorter
// flags.
func runValidate(tmpl pipeline.Config, regRead int, o sample.Options) {
	benches := append(workload.SingleThreaded(), "m88-comp")
	var labels []string
	var cfgs []pipeline.Config
	for _, b := range benches {
		wl, err := workload.ByName(b)
		if err != nil {
			log.Fatal(err)
		}
		for _, dra := range []bool{false, true} {
			var cfg pipeline.Config
			kind := "base"
			if dra {
				cfg = pipeline.DRAConfigRF(wl, regRead)
				kind = "dra"
			} else {
				cfg = pipeline.BaseConfigRF(wl, regRead)
			}
			cfg.Seed = tmpl.Seed
			cfg.WarmupInstructions = tmpl.WarmupInstructions
			cfg.MeasureInstructions = tmpl.MeasureInstructions
			labels = append(labels, b+"/"+kind)
			cfgs = append(cfgs, cfg)
		}
	}
	start := time.Now()
	viols, err := sample.Validate(context.Background(), labels, cfgs, o)
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range viols {
		fmt.Println(v)
	}
	fmt.Printf("validated %d configs in %.1fs: %d violations\n",
		len(cfgs), time.Since(start).Seconds(), len(viols))
	if len(viols) > 0 {
		os.Exit(1)
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("loosim: ")

	var (
		bench    = flag.String("bench", "gcc", "benchmark name (see -list)")
		list     = flag.Bool("list", false, "list benchmarks and exit")
		dra      = flag.Bool("dra", false, "enable the distributed register algorithm")
		regRead  = flag.Int("regread", 3, "register file access latency (3, 5 or 7 in the paper)")
		decIQ    = flag.Int("deciq", 0, "override DEC-IQ latency (0 = derive from -regread/-dra)")
		iqEx     = flag.Int("iqex", 0, "override IQ-EX latency (0 = derive from -regread/-dra)")
		loadPol  = flag.String("load", "reissue", "load resolution policy: reissue, refetch, stall")
		memDep   = flag.String("memdep", "storewait", "memory dependence policy: storewait, blind, conservative")
		inst     = flag.Uint64("inst", 300_000, "instructions to measure")
		warm     = flag.Uint64("warmup", 150_000, "instructions to warm up")
		seed     = flag.Int64("seed", 1, "simulation seed")
		iqSize   = flag.Int("iq", 0, "override IQ entries (0 = default 128)")
		inflight = flag.Int("inflight", 0, "override max in-flight (0 = default 256)")
		clusters = flag.Int("clusters", 0, "override cluster count (0 = default 8)")
		verbose  = flag.Bool("v", false, "print extended statistics")
		asJSON   = flag.Bool("json", false, "emit the result as JSON")
		trace    = flag.Uint64("trace", 0, "trace the first N retired instructions to stderr")
		ivPath   = flag.String("intervals", "", "write the per-interval time series to FILE (.jsonl/.json = JSONL, else CSV)")
		evPath   = flag.String("events", "", "write the loop-event stream to FILE as JSONL")
		ivCycles = flag.Int64("interval", 0, "cycles per observation interval (0 = default 10000)")

		sampleN  = flag.Int("sample", 0, "sampled simulation: number of measurement windows (0 = full run)")
		windowW  = flag.Uint64("window", 0, "sampled simulation: instructions measured per window (0 = default)")
		sampleDW = flag.Uint64("samplewarm", 0, "sampled simulation: detailed warmup per window (0 = default)")
		validate = flag.Bool("validate", false, "run sampled-vs-full convergence validation over the figure grid and exit")
	)
	flag.Parse()

	if *list {
		for _, n := range workload.PaperOrder() {
			fmt.Println(n)
		}
		return
	}

	wl, err := workload.ByName(*bench)
	if err != nil {
		log.Fatal(err)
	}
	var cfg pipeline.Config
	if *dra {
		cfg = pipeline.DRAConfigRF(wl, *regRead)
	} else {
		cfg = pipeline.BaseConfigRF(wl, *regRead)
	}
	if *decIQ > 0 {
		cfg.DecIQLat = *decIQ
	}
	if *iqEx > 0 {
		cfg.IQExLat = *iqEx
	}
	switch *loadPol {
	case "reissue":
		cfg.LoadPolicy = pipeline.LoadReissue
	case "refetch":
		cfg.LoadPolicy = pipeline.LoadRefetch
	case "stall":
		cfg.LoadPolicy = pipeline.LoadStall
	default:
		log.Fatalf("unknown load policy %q", *loadPol)
	}
	switch *memDep {
	case "storewait":
		cfg.MemDep = pipeline.MemDepStoreWait
	case "blind":
		cfg.MemDep = pipeline.MemDepBlind
	case "conservative":
		cfg.MemDep = pipeline.MemDepConservative
	default:
		log.Fatalf("unknown memory dependence policy %q", *memDep)
	}
	cfg.Seed = *seed
	cfg.WarmupInstructions = *warm
	cfg.MeasureInstructions = *inst
	if *iqSize > 0 {
		cfg.IQEntries = *iqSize
	}
	if *inflight > 0 {
		cfg.MaxInFlight = *inflight
	}
	if *clusters > 0 {
		cfg.Clusters = *clusters
		cfg.DRA.Clusters = *clusters
	}

	sopt := sample.DefaultOptions()
	if *sampleN > 0 {
		sopt.Windows = *sampleN
	}
	if *windowW > 0 {
		sopt.WindowInstructions = *windowW
	}
	if *sampleDW > 0 {
		sopt.DetailedWarmup = *sampleDW
	}

	if *validate {
		runValidate(cfg, *regRead, sopt)
		return
	}
	if *sampleN > 0 {
		if *trace > 0 || *ivPath != "" || *evPath != "" {
			log.Fatal("sampled runs measure detached windows; -trace/-intervals/-events are full-run probes")
		}
		runSampled(cfg, sopt, *asJSON)
		return
	}

	if *trace > 0 {
		cfg.Tracer = pipeline.NewTracer(os.Stderr, *trace)
	}

	// Observability probes.
	var (
		ivw    intervalWriter
		ivFile *os.File
		evw    *obs.RingWriter
		evFile *os.File
	)
	if *ivPath != "" {
		ivFile, err = os.Create(*ivPath)
		if err != nil {
			log.Fatal(err)
		}
		if strings.HasSuffix(*ivPath, ".jsonl") || strings.HasSuffix(*ivPath, ".json") {
			ivw = obs.NewIntervalJSONL(ivFile)
		} else {
			ivw = obs.NewIntervalCSV(ivFile)
		}
		cfg.Intervals = ivw
		cfg.SampleInterval = *ivCycles
	}
	if *evPath != "" {
		evFile, err = os.Create(*evPath)
		if err != nil {
			log.Fatal(err)
		}
		evw = obs.NewRingWriter(evFile, 0)
		cfg.Events = evw
	}

	m, err := pipeline.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	res := m.Run()
	host := profileHost(res, time.Since(start))

	// Flush and verify every observability output before reporting: a
	// truncated stream must fail the run, not pass silently.
	if err := verifyStreams(evw, ivw, cfg.Tracer); err != nil {
		log.Fatal(err)
	}
	if evFile != nil {
		if err := evFile.Close(); err != nil {
			log.Fatalf("event stream: %v", err)
		}
	}
	if ivFile != nil {
		if err := ivFile.Close(); err != nil {
			log.Fatalf("interval stream: %v", err)
		}
	}

	if *asJSON {
		printJSON(cfg, res, host)
		return
	}

	fmt.Printf("benchmark        %s\n", res.Benchmark)
	fmt.Printf("pipeline         DEC-IQ=%d IQ-EX=%d regread=%d dra=%v load=%s\n",
		cfg.DecIQLat, cfg.IQExLat, cfg.RegReadLat, cfg.UseDRA, cfg.LoadPolicy)
	fmt.Printf("cycles           %d\n", res.Counters.Cycles)
	fmt.Printf("retired          %d (IPC %.3f)\n", res.Counters.Retired, res.IPC())
	fmt.Printf("branches         %d (mispredict %.2f%%)\n", res.Counters.Branches, 100*res.MispredictRate())
	fmt.Printf("loads            %d (L1 miss %.2f%%, L2 miss %d, bank conflicts %d, TLB traps %d)\n",
		res.Counters.Loads, 100*res.L1MissRate(), res.Counters.L2Misses,
		res.Counters.BankConflicts, res.Counters.TLBMissTraps)
	fmt.Printf("load misspecs    %d; data reissues %d\n", res.Counters.LoadMisspecs, res.Counters.DataReissues)
	fmt.Printf("memory ordering  %d order traps, %d store forwards (%s policy)\n",
		res.Counters.MemOrderTraps, res.Counters.StoreForwards, cfg.MemDep)
	fmt.Printf("squashed         %d total, %d issued\n", res.Counters.SquashedTotal, res.Counters.SquashedIssued)
	fmt.Printf("IQ occupancy     %.1f mean, %.1f issued-retained\n", res.IQOccupancy, res.IQRetained)
	fmt.Printf("cycle stack      %s\n", res.Cycles)
	if cfg.UseDRA {
		pr, fw, crc, miss := res.OperandShare()
		fmt.Printf("operands         pre-read %.1f%%, forwarded %.1f%%, CRC %.1f%%, miss %.3f%%\n",
			100*pr, 100*fw, 100*crc, 100*miss)
		fmt.Printf("operand reissues %d; front-end stall cycles %d\n",
			res.Counters.OperandReissues, res.Counters.FrontStalls)
	}
	fmt.Printf("host throughput  %.0f KIPS, %.2fM cycles/s (%.2fs wall)\n",
		host.KIPS, host.CyclesPerSec/1e6, host.WallSeconds)
	if *verbose {
		fmt.Printf("fetched          %d (+%d wrong-path), BTB bubbles %d\n",
			res.Counters.Fetched, res.Counters.WrongPathFetch, res.Counters.BTBBubbles)
		fmt.Printf("issued           %d slots, useful executions %d, useless work %d\n",
			res.Counters.IssuedTotal, res.Counters.ExecutedUseful, res.UselessWork())
		fmt.Printf("rename stalls    %d on IQ-full\n", res.Counters.RenameStallIQ)
		for i, r := range res.RetiredPerThread {
			fmt.Printf("thread %d         %d retired\n", i, r)
		}
		fmt.Printf("operand gap      p50=%d p90=%d cycles, <=9: %.1f%%\n",
			res.OperandGap.Percentile(0.5), res.OperandGap.Percentile(0.9),
			100*res.OperandGap.Fraction(9))
	}
	os.Exit(0)
}
