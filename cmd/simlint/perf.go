package main

import (
	"fmt"
	"io"

	"loosesim/internal/analysis"
)

// runPerf drives the perf-analysis layer: compile the module with
// diagnostic flags, join the output against the hot-path call graph, count
// dynamic dispatch sites, and either report, check against, or rewrite the
// committed budget. Returns the process exit code contribution: 0 clean,
// 1 budget exceeded, 2 operational error.
func runPerf(stdout, stderr io.Writer, loader *analysis.Loader, root string,
	report bool, baselinePath string, update bool) int {

	prog := analysis.BuildProgram(loader.Fset(), loader.AllPackages())
	raws, err := analysis.CompilerDiags(root, nil)
	if err != nil {
		fmt.Fprintln(stderr, "simlint:", err)
		return 2
	}
	diags := analysis.JoinHot(prog, root, raws)
	sites := analysis.HotDispatchSites(prog)
	current := analysis.ComputePerfBudget(diags, sites)

	if report {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
		fmt.Fprintf(stderr, "simlint: %d hot-path compiler diagnostic(s), %d dynamic dispatch site(s)\n",
			len(diags), len(sites))
	}

	if baselinePath == "" {
		return 0 // -perf alone is a report, not a gate
	}
	if update {
		if err := current.Write(baselinePath); err != nil {
			fmt.Fprintln(stderr, "simlint:", err)
			return 2
		}
		fmt.Fprintf(stderr, "simlint: wrote perf budget %s\n", baselinePath)
		return 0
	}
	baseline, err := analysis.ReadPerfBudget(baselinePath)
	if err != nil {
		fmt.Fprintln(stderr, "simlint:", err)
		return 2
	}
	growths, shrinks := baseline.Diff(current)
	for _, d := range shrinks {
		fmt.Fprintf(stderr, "simlint: perf budget improved: %s (lock it in with -perfupdate)\n", d)
	}
	for _, d := range growths {
		fmt.Fprintf(stderr, "simlint: perf budget exceeded: %s\n", d)
	}
	if len(growths) > 0 {
		fmt.Fprintf(stderr, "simlint: %d hot-path perf count(s) grew over %s; fix the regressions or justify a new budget\n",
			len(growths), baselinePath)
		return 1
	}
	return 0
}
