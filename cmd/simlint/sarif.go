package main

import (
	"encoding/json"
	"os"
	"strconv"
	"strings"

	"loosesim/internal/analysis"
)

// Minimal SARIF 2.1.0 output, enough for github/codeql-action/upload-sarif
// to turn findings into PR annotations. One run, one tool (simlint), one
// rule per analyzer; findings map to results with physical locations.
// Positions are already root-relative slash paths by the time this runs
// (relativize), which is exactly the uriBaseId-free form the uploader
// resolves against the repository root.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// writeSARIF renders the findings of this run as a SARIF log at path.
// Rules cover the analyzers that actually ran, so the log is
// self-describing without dragging in the whole suite.
func writeSARIF(path string, analyzers []*analysis.Analyzer, diags []analysis.Diagnostic) error {
	run := sarifRun{
		Tool: sarifTool{Driver: sarifDriver{
			Name:  "simlint",
			Rules: make([]sarifRule, 0, len(analyzers)),
		}},
		Results: make([]sarifResult, 0, len(diags)),
	}
	for _, a := range analyzers {
		run.Tool.Driver.Rules = append(run.Tool.Driver.Rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	for _, d := range diags {
		file, line, col := splitPosition(d.Position)
		run.Results = append(run.Results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: file},
				Region:           sarifRegion{StartLine: line, StartColumn: col},
			}}},
		})
	}
	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{run},
	}
	data, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// splitPosition breaks "file:line:col" apart; SARIF wants startLine >= 1,
// so an unparsable position degrades to line 1 rather than an invalid log.
func splitPosition(pos string) (file string, line, col int) {
	file, line, col = pos, 1, 0
	rest := pos
	if i := strings.LastIndex(rest, ":"); i >= 0 {
		if n, err := strconv.Atoi(rest[i+1:]); err == nil {
			col = n
			rest = rest[:i]
			if j := strings.LastIndex(rest, ":"); j >= 0 {
				if m, err := strconv.Atoi(rest[j+1:]); err == nil && m >= 1 {
					line = m
					rest = rest[:j]
				}
			}
			file = rest
		}
	}
	return file, line, col
}
