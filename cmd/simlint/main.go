// Command simlint runs the simulator's domain-specific static-analysis
// suite (internal/analysis) over the module: determinism, config hygiene,
// loop safety, and error discipline, with vet-style file:line:col output.
//
// Usage:
//
//	simlint [flags] [packages]
//
// Packages follow go-tool patterns relative to the module root: `./...`
// (the default), `./internal/...`, `./internal/pipeline`. The tool exits 0
// when clean, 1 when it found problems, and 2 on a load or usage error.
//
// Flags:
//
//	-json       emit findings as a JSON array instead of text
//	-list       list the available analyzers and exit
//	-enable     comma-separated analyzers to run (default "all")
//	-disable    comma-separated analyzers to skip
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"loosesim/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("simlint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	list := fs.Bool("list", false, "list analyzers and exit")
	enable := fs.String("enable", "all", "comma-separated analyzers to run")
	disable := fs.String("disable", "", "comma-separated analyzers to skip")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-13s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := analysis.ByName(*enable)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 2
	}
	if *disable != "" {
		skip, err := analysis.ByName(*disable)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			return 2
		}
		skipNames := make(map[string]bool)
		for _, a := range skip {
			skipNames[a.Name] = true
		}
		var kept []*analysis.Analyzer
		for _, a := range analyzers {
			if !skipNames[a.Name] {
				kept = append(kept, a)
			}
		}
		analyzers = kept
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 2
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 2
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 2
	}
	pkgs, err := loader.Load(fs.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 2
	}
	if len(pkgs) == 0 {
		fmt.Fprintf(os.Stderr, "simlint: patterns %v matched no packages\n", fs.Args())
		return 2
	}

	diags := analysis.RunAnalyzers(loader, pkgs, analyzers)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}
