// Command simlint runs the simulator's domain-specific static-analysis
// suite (internal/analysis) over the module: determinism, config hygiene,
// loop safety, hot-path allocation discipline, and error discipline, with
// vet-style file:line:col output.
//
// Usage:
//
//	simlint [flags] [packages]
//
// Packages follow go-tool patterns relative to the module root: `./...`
// (the default), `./internal/...`, `./internal/pipeline`. The tool exits 0
// when clean, 1 when it found problems, and 2 on a load or usage error.
//
// Flags:
//
//	-json       emit findings as a JSON array instead of text
//	-list       list the available analyzers and exit
//	-enable     comma-separated analyzers to run (default "all")
//	-disable    comma-separated analyzers to skip
//	-baseline   JSON findings file (as produced by -json); findings whose
//	            analyzer, file, and message match a recorded entry are
//	            suppressed, so a new analyzer can be adopted incrementally
//	            while keeping the gate green
//	-sarif      also write the findings as a SARIF 2.1.0 log to the given
//	            file, for native PR annotation upload in CI
//	-timing     print one wall-time line per enabled analyzer to stderr
//	-v          with -timing, also print the run total and call-graph time
//
// The performance layer (see internal/analysis escapes.go, perfbudget.go)
// rides behind its own flags:
//
//	-perf          report hot-path compiler diagnostics (heap escapes,
//	               inlining failures, bounds checks) joined against the
//	               call graph; a report, not a gate — exit stays 0
//	-perfbaseline  perf budget JSON (PERF_baseline.json); exit 1 if any
//	               hot-path count grew over the committed budget
//	-perfupdate    with -perfbaseline, rewrite the budget from the current
//	               counts instead of checking (run after an optimization
//	               PR to ratchet the budget down)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"loosesim/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("simlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	list := fs.Bool("list", false, "list analyzers and exit")
	enable := fs.String("enable", "all", "comma-separated analyzers to run")
	disable := fs.String("disable", "", "comma-separated analyzers to skip")
	baseline := fs.String("baseline", "", "JSON findings file; matching findings are suppressed")
	sarif := fs.String("sarif", "", "also write findings as SARIF 2.1.0 to this file")
	timing := fs.Bool("timing", false, "print per-analyzer wall time to stderr")
	verbose := fs.Bool("v", false, "with -timing, also print total and call-graph time")
	perf := fs.Bool("perf", false, "report hot-path compiler diagnostics (escapes, inlining, bounds checks)")
	perfBaseline := fs.String("perfbaseline", "", "perf budget JSON; exit 1 if any hot-path count grew")
	perfUpdate := fs.Bool("perfupdate", false, "with -perfbaseline, rewrite the budget from current counts")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-13s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := analysis.ByName(*enable)
	if err != nil {
		fmt.Fprintln(stderr, "simlint:", err)
		return 2
	}
	if *disable != "" {
		skip, err := analysis.ByName(*disable)
		if err != nil {
			fmt.Fprintln(stderr, "simlint:", err)
			return 2
		}
		skipNames := make(map[string]bool)
		for _, a := range skip {
			skipNames[a.Name] = true
		}
		var kept []*analysis.Analyzer
		for _, a := range analyzers {
			if !skipNames[a.Name] {
				kept = append(kept, a)
			}
		}
		analyzers = kept
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "simlint:", err)
		return 2
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "simlint:", err)
		return 2
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "simlint:", err)
		return 2
	}
	pkgs, err := loader.Load(fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "simlint:", err)
		return 2
	}
	if len(pkgs) == 0 {
		fmt.Fprintf(stderr, "simlint: patterns %v matched no packages\n", fs.Args())
		return 2
	}

	var clock func() time.Time
	if *timing {
		clock = time.Now
	}
	diags, stats := analysis.RunAnalyzersTimed(loader, pkgs, analyzers, clock)
	if *timing {
		for _, tm := range stats.Timings {
			fmt.Fprintf(stderr, "timing: %-13s %s\n", tm.Name, tm.Elapsed.Round(time.Microsecond))
		}
		if *verbose {
			fmt.Fprintf(stderr, "timing: callgraph %s, total %s\n",
				stats.Graph.Round(time.Microsecond), stats.Total.Round(time.Microsecond))
		}
	}
	relativize(diags, root)
	if *baseline != "" {
		known, err := loadBaseline(*baseline, root)
		if err != nil {
			fmt.Fprintln(stderr, "simlint:", err)
			return 2
		}
		var kept []analysis.Diagnostic
		for _, d := range diags {
			if !known[baselineKey(d, root)] {
				kept = append(kept, d)
			}
		}
		diags = kept
	}
	if *sarif != "" {
		if err := writeSARIF(*sarif, analyzers, diags); err != nil {
			fmt.Fprintln(stderr, "simlint:", err)
			return 2
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "simlint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	code := 0
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "simlint: %d finding(s)\n", len(diags))
		}
		code = 1
	}
	if *perf || *perfBaseline != "" {
		if pc := runPerf(stdout, stderr, loader, root, *perf, *perfBaseline, *perfUpdate); pc > code {
			code = pc
		}
	}
	return code
}

// relativize rewrites absolute positions under the module root to
// root-relative slash form, so text and -json output are stable across
// checkouts and line up with the CI problem matcher's annotations.
func relativize(diags []analysis.Diagnostic, root string) {
	for i := range diags {
		file := diags[i].Position
		suffix := ""
		for range [2]int{} { // peel :col then :line off the right
			if j := strings.LastIndex(file, ":"); j >= 0 {
				suffix = file[j:] + suffix
				file = file[:j]
			}
		}
		if !filepath.IsAbs(file) {
			continue
		}
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].Position = filepath.ToSlash(rel) + suffix
		}
	}
}

// loadBaseline reads a -json findings file and returns the set of match
// keys it records.
func loadBaseline(path, root string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	var recorded []analysis.Diagnostic
	if err := json.Unmarshal(data, &recorded); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	known := make(map[string]bool, len(recorded))
	for _, d := range recorded {
		known[baselineKey(d, root)] = true
	}
	return known, nil
}

// baselineKey identifies a finding for baseline matching: analyzer, file,
// and message. Line and column are deliberately excluded — unrelated edits
// move findings around without resolving them — and paths under the module
// root are normalised to root-relative slash form.
func baselineKey(d analysis.Diagnostic, root string) string {
	file := d.Position
	for range [2]int{} { // strip :col then :line
		if i := strings.LastIndex(file, ":"); i >= 0 {
			file = file[:i]
		}
	}
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = rel
	}
	return d.Analyzer + "\x00" + filepath.ToSlash(file) + "\x00" + d.Message
}
