package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"loosesim/internal/analysis"
)

// writeTempModule lays out a minimal module with one deliberate loopbound
// finding in an internal/pipeline package and chdirs into it.
func writeTempModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module simlinttest\n\ngo 1.22\n",
		"internal/pipeline/loop.go": `package pipeline

// Spin burns cycles forever; the missing exit is the finding under test.
func Spin() {
	x := 0
	for {
		x++
	}
}
`,
	}
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(cwd) })
	return dir
}

// TestRunJSONAndBaseline drives the CLI end to end: -json must report the
// planted finding as machine-readable output with exit 1, and feeding that
// very output back via -baseline must suppress it down to a clean exit 0.
func TestRunJSONAndBaseline(t *testing.T) {
	dir := writeTempModule(t)

	var out, errb bytes.Buffer
	code := run([]string{"-json", "./..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("run -json = exit %d, stderr %q; want 1", code, errb.String())
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out.String())
	}
	found := false
	for _, d := range diags {
		if d.Analyzer == "loopbound" {
			found = true
		}
		if filepath.IsAbs(d.Position) {
			t.Errorf("position %q is absolute; findings must be module-root-relative", d.Position)
		}
	}
	if !found {
		t.Fatalf("-json output lacks the planted loopbound finding: %s", out.String())
	}

	basePath := filepath.Join(dir, "baseline.json")
	if err := os.WriteFile(basePath, out.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errb.Reset()
	code = run([]string{"-baseline", basePath, "./..."}, &out, &errb)
	if code != 0 {
		t.Fatalf("run -baseline = exit %d; want 0\nstdout: %s\nstderr: %s",
			code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Fatalf("baselined run should print nothing, got: %s", out.String())
	}

	// A baseline must not mask findings it does not record: point it at an
	// empty set and the finding comes back.
	if err := os.WriteFile(basePath, []byte("[]"), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errb.Reset()
	code = run([]string{"-baseline", basePath, "./..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("run with empty baseline = exit %d; want 1", code)
	}
}

// TestTimingOutput checks -timing emits exactly one wall-time line per
// registered analyzer on stderr, and that -v adds the call-graph/total
// summary line.
func TestTimingOutput(t *testing.T) {
	writeTempModule(t)

	var out, errb bytes.Buffer
	code := run([]string{"-timing", "-v", "./..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("run -timing = exit %d, stderr %q; want 1", code, errb.String())
	}

	named := make(map[string]bool)
	sawSummary := false
	for _, line := range strings.Split(strings.TrimSpace(errb.String()), "\n") {
		rest, ok := strings.CutPrefix(line, "timing: ")
		if !ok {
			continue
		}
		if strings.HasPrefix(rest, "callgraph ") {
			if !strings.Contains(rest, ", total ") {
				t.Errorf("summary line lacks total: %q", line)
			}
			sawSummary = true
			continue
		}
		name := strings.Fields(rest)[0]
		if named[name] {
			t.Errorf("analyzer %s timed twice", name)
		}
		named[name] = true
	}
	for _, a := range analysis.All() {
		if !named[a.Name] {
			t.Errorf("-timing emitted no line for analyzer %s", a.Name)
		}
	}
	if len(named) != len(analysis.All()) {
		t.Errorf("-timing named %d analyzers, registry has %d", len(named), len(analysis.All()))
	}
	if !sawSummary {
		t.Error("-timing -v emitted no callgraph/total summary line")
	}
}

// TestSARIFOutput checks -sarif writes a parseable SARIF 2.1.0 log whose
// results carry the planted finding with a root-relative location.
func TestSARIFOutput(t *testing.T) {
	dir := writeTempModule(t)
	path := filepath.Join(dir, "out.sarif")

	var out, errb bytes.Buffer
	code := run([]string{"-sarif", path, "./..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("run -sarif = exit %d, stderr %q; want 1", code, errb.String())
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var log sarifLog
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v\n%s", err, data)
	}
	if log.Version != "2.1.0" {
		t.Fatalf("SARIF version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("SARIF runs = %d, want 1", len(log.Runs))
	}
	run0 := log.Runs[0]
	if len(run0.Tool.Driver.Rules) != len(analysis.All()) {
		t.Errorf("SARIF rules = %d, want one per registered analyzer (%d)",
			len(run0.Tool.Driver.Rules), len(analysis.All()))
	}
	found := false
	for _, r := range run0.Results {
		if r.RuleID != "loopbound" {
			continue
		}
		found = true
		if len(r.Locations) != 1 {
			t.Fatalf("loopbound result has %d locations, want 1", len(r.Locations))
		}
		loc := r.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI != "internal/pipeline/loop.go" {
			t.Errorf("SARIF uri = %q, want internal/pipeline/loop.go", loc.ArtifactLocation.URI)
		}
		if loc.Region.StartLine <= 0 {
			t.Errorf("SARIF startLine = %d, want positive", loc.Region.StartLine)
		}
	}
	if !found {
		t.Fatalf("SARIF results lack the planted loopbound finding: %s", data)
	}
}

// matcherRE mirrors .github/problem-matcher-simlint.json: the CI matcher
// only annotates lines of this shape, so text output must keep it.
var matcherRE = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): ([a-z][a-z-]*): (.+)$`)

// TestTextOutputMatchesProblemMatcher pins the text format the GitHub
// problem matcher parses: root-relative file, line, column, analyzer name,
// message.
func TestTextOutputMatchesProblemMatcher(t *testing.T) {
	writeTempModule(t)

	var out, errb bytes.Buffer
	code := run([]string{"./..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("run = exit %d, stderr %q; want 1", code, errb.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) == 0 {
		t.Fatal("no findings printed")
	}
	for _, line := range lines {
		m := matcherRE.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("finding line does not match the problem matcher pattern: %q", line)
			continue
		}
		if filepath.IsAbs(m[1]) {
			t.Errorf("finding file %q is absolute; matcher annotations need root-relative paths", m[1])
		}
	}
}
