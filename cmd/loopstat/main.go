// Command loopstat aggregates the observability streams written by
// cmd/loosim into human-readable summaries.
//
// Usage:
//
//	loosim -bench apsi -dra -events ev.jsonl -intervals iv.csv
//	loopstat -events ev.jsonl
//	loopstat -intervals iv.csv
//	loopstat -events ev.jsonl -intervals iv.csv
//	loosim -bench apsi -dra -events /dev/stdout | loopstat -events -
//
// The event stream yields a per-loop table: traversal count, mean and p99
// delay, and total cycles lost per loose loop. The interval file (CSV or
// JSONL, detected from the content) yields run totals, per-interval IPC
// spread, the Figure-9-style operand delivery shares re-aggregated from raw
// counts, and the worst operand-reissue burst. Any parse error exits
// nonzero.
package main

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"

	"loosesim/internal/obs"
)

func openArg(path string) (io.ReadCloser, error) {
	if path == "-" {
		return io.NopCloser(os.Stdin), nil
	}
	return os.Open(path)
}

// readEvents decodes a JSONL event stream into a per-loop aggregator.
func readEvents(r io.Reader) (*obs.LoopDelays, int, error) {
	delays := obs.NewLoopDelays(0)
	dec := json.NewDecoder(r)
	n := 0
	for {
		var e obs.Event
		if err := dec.Decode(&e); err != nil {
			if errors.Is(err, io.EOF) {
				return delays, n, nil
			}
			return nil, n, fmt.Errorf("event record %d: %w", n+1, err)
		}
		delays.Event(e)
		n++
	}
}

// readIntervals parses an interval time series, sniffing the format: a
// leading '{' means JSONL, anything else is treated as loosim's CSV.
func readIntervals(r io.Reader) ([]obs.Interval, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	data = bytes.TrimLeft(data, " \t\r\n")
	if len(data) == 0 {
		return nil, errors.New("intervals file is empty")
	}
	if data[0] == '{' {
		return parseIntervalJSONL(data)
	}
	return parseIntervalCSV(data)
}

func parseIntervalJSONL(data []byte) ([]obs.Interval, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	var series []obs.Interval
	for {
		var iv obs.Interval
		if err := dec.Decode(&iv); err != nil {
			if errors.Is(err, io.EOF) {
				return series, nil
			}
			return nil, fmt.Errorf("interval record %d: %w", len(series)+1, err)
		}
		series = append(series, iv)
	}
}

// requiredColumns are the fields the summary re-aggregates from; a CSV
// missing any of them is rejected rather than silently under-reported.
var requiredColumns = []string{
	"index", "start_cycle", "end_cycle", "retired", "ipc",
	"operands_read", "op_preread", "op_forwarded", "op_crc", "op_misses",
	"operand_reissues",
}

func parseIntervalCSV(data []byte) ([]obs.Interval, error) {
	cr := csv.NewReader(bytes.NewReader(data))
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("csv header: %w", err)
	}
	cols := make(map[string]int, len(header))
	for i, name := range header {
		cols[name] = i
	}
	for _, name := range requiredColumns {
		if _, ok := cols[name]; !ok {
			return nil, fmt.Errorf("csv header missing column %q", name)
		}
	}
	var series []obs.Interval
	for {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			return series, nil
		}
		if err != nil {
			return nil, fmt.Errorf("csv row %d: %w", len(series)+2, err)
		}
		var iv obs.Interval
		for name, i := range cols {
			if err := setField(&iv, name, rec[i]); err != nil {
				return nil, fmt.Errorf("csv row %d, column %s: %w", len(series)+2, name, err)
			}
		}
		series = append(series, iv)
	}
}

// setField assigns one named CSV cell to its Interval field. Names match
// the json tags (and so the CSV header) in internal/obs. Unknown columns
// are ignored so newer files still aggregate.
func setField(iv *obs.Interval, name, val string) error {
	geti := func(dst *int) error {
		v, err := strconv.Atoi(val)
		*dst = v
		return err
	}
	geti64 := func(dst *int64) error {
		v, err := strconv.ParseInt(val, 10, 64)
		*dst = v
		return err
	}
	getu := func(dst *uint64) error {
		v, err := strconv.ParseUint(val, 10, 64)
		*dst = v
		return err
	}
	getf := func(dst *float64) error {
		v, err := strconv.ParseFloat(val, 64)
		*dst = v
		return err
	}
	switch name {
	case "index":
		return geti(&iv.Index)
	case "start_cycle":
		return geti64(&iv.StartCycle)
	case "end_cycle":
		return geti64(&iv.EndCycle)
	case "retired":
		return getu(&iv.Retired)
	case "ipc":
		return getf(&iv.IPC)
	case "branches":
		return getu(&iv.Branches)
	case "mispredicts":
		return getu(&iv.Mispredicts)
	case "mispredict_rate":
		return getf(&iv.MispredictRate)
	case "loads":
		return getu(&iv.Loads)
	case "l1_misses":
		return getu(&iv.L1Misses)
	case "l2_misses":
		return getu(&iv.L2Misses)
	case "l1_miss_rate":
		return getf(&iv.L1MissRate)
	case "l2_miss_rate":
		return getf(&iv.L2MissRate)
	case "iq_occupancy":
		return getf(&iv.IQOccupancy)
	case "operands_read":
		return getu(&iv.OperandsRead)
	case "op_preread":
		return getu(&iv.OperandPreRead)
	case "op_forwarded":
		return getu(&iv.OperandForwarded)
	case "op_crc":
		return getu(&iv.OperandCRC)
	case "op_misses":
		return getu(&iv.OperandMisses)
	case "op_preread_share":
		return getf(&iv.PreReadShare)
	case "op_forward_share":
		return getf(&iv.ForwardShare)
	case "op_crc_share":
		return getf(&iv.CRCShare)
	case "op_miss_share":
		return getf(&iv.MissShare)
	case "operand_reissues":
		return getu(&iv.OperandReissues)
	case "data_reissues":
		return getu(&iv.DataReissues)
	case "squashed_issued":
		return getu(&iv.SquashedIssued)
	case "useless_work":
		return getu(&iv.UselessWork)
	}
	return nil
}

// summarizeIntervals prints run totals, the IPC spread, the operand
// delivery shares re-aggregated from the raw counts, and the worst
// operand-reissue interval.
func summarizeIntervals(w io.Writer, series []obs.Interval) {
	var (
		cycles                 int64
		retired                uint64
		branches, mispredicts  uint64
		loads, l1, l2          uint64
		reads, pre, fw, crc    uint64
		misses, opRe, dataRe   uint64
		useless                uint64
		minIPC, maxIPC, sumIPC float64
		peak                   obs.Interval
	)
	minIPC = series[0].IPC
	for _, iv := range series {
		cycles += iv.Cycles()
		retired += iv.Retired
		branches += iv.Branches
		mispredicts += iv.Mispredicts
		loads += iv.Loads
		l1 += iv.L1Misses
		l2 += iv.L2Misses
		reads += iv.OperandsRead
		pre += iv.OperandPreRead
		fw += iv.OperandForwarded
		crc += iv.OperandCRC
		misses += iv.OperandMisses
		opRe += iv.OperandReissues
		dataRe += iv.DataReissues
		useless += iv.UselessWork
		sumIPC += iv.IPC
		if iv.IPC < minIPC {
			minIPC = iv.IPC
		}
		if iv.IPC > maxIPC {
			maxIPC = iv.IPC
		}
		if iv.OperandReissues > peak.OperandReissues {
			peak = iv
		}
	}
	aggIPC := 0.0
	if cycles > 0 {
		aggIPC = float64(retired) / float64(cycles)
	}
	fmt.Fprintf(w, "intervals        %d (%d cycles, %d retired, IPC %.3f)\n",
		len(series), cycles, retired, aggIPC)
	fmt.Fprintf(w, "ipc spread       min %.3f  mean %.3f  max %.3f\n",
		minIPC, sumIPC/float64(len(series)), maxIPC)
	if branches > 0 {
		fmt.Fprintf(w, "branches         %d (mispredict %.2f%%)\n",
			branches, 100*float64(mispredicts)/float64(branches))
	}
	if loads > 0 {
		fmt.Fprintf(w, "loads            %d (L1 miss %.2f%%, L2 misses %d)\n",
			loads, 100*float64(l1)/float64(loads), l2)
	}
	if reads > 0 {
		fmt.Fprintf(w, "operand delivery pre-read %.1f%%, forwarded %.1f%%, CRC %.1f%%, miss %.3f%% of %d reads\n",
			100*float64(pre)/float64(reads), 100*float64(fw)/float64(reads),
			100*float64(crc)/float64(reads), 100*float64(misses)/float64(reads), reads)
		fmt.Fprintf(w, "operand reissues %d total; peak %d in interval %d [cycle %d-%d]\n",
			opRe, peak.OperandReissues, peak.Index, peak.StartCycle, peak.EndCycle)
	}
	fmt.Fprintf(w, "reissued work    %d data reissues, %d useless executions\n", dataRe, useless)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("loopstat: ")
	evPath := flag.String("events", "", "loop-event JSONL file from loosim -events (\"-\" = stdin)")
	ivPath := flag.String("intervals", "", "interval CSV/JSONL file from loosim -intervals (\"-\" = stdin)")
	flag.Parse()

	if *evPath == "" && *ivPath == "" {
		fmt.Fprintln(os.Stderr, "usage: loopstat -events FILE and/or -intervals FILE (\"-\" = stdin)")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if *evPath == "-" && *ivPath == "-" {
		log.Fatal("only one of -events/-intervals can read stdin")
	}

	if *evPath != "" {
		f, err := openArg(*evPath)
		if err != nil {
			log.Fatal(err)
		}
		delays, n, err := readEvents(f)
		if err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loop events      %d\n", n)
		fmt.Print(delays.Table())
	}

	if *ivPath != "" {
		if *evPath != "" {
			fmt.Println()
		}
		f, err := openArg(*ivPath)
		if err != nil {
			log.Fatal(err)
		}
		series, err := readIntervals(f)
		if err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		if len(series) == 0 {
			log.Fatal("intervals file has a header but no rows")
		}
		summarizeIntervals(os.Stdout, series)
	}
}
