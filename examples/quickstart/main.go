// Quickstart: simulate one benchmark on the paper's base machine and print
// the headline statistics, including the activity on each of the three
// loose loops the paper studies.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"loosesim"
)

func main() {
	log.SetFlags(0)

	// The base machine of the paper's Section 2: 8-wide SMT, 128-entry
	// clustered IQ, DEC-IQ = 5, IQ-EX = 5 with a 3-cycle register file
	// read, load-hit speculation with reissue recovery.
	cfg, err := loosesim.DefaultMachine("gcc")
	if err != nil {
		log.Fatal(err)
	}
	cfg.WarmupInstructions = 100_000
	cfg.MeasureInstructions = 200_000

	res, err := loosesim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark: %s\n", res.Benchmark)
	fmt.Printf("IPC:       %.3f over %d cycles\n\n", res.IPC(), res.Counters.Cycles)

	fmt.Println("branch resolution loop (fetch <- execute):")
	fmt.Printf("  %d branches, %.2f%% mispredicted\n",
		res.Counters.Branches, 100*res.MispredictRate())
	fmt.Printf("  %d instructions squashed (%d of them already issued)\n\n",
		res.Counters.SquashedTotal, res.Counters.SquashedIssued)

	fmt.Println("load resolution loop (issue <- execute):")
	fmt.Printf("  %d loads, %.2f%% missed L1, %d bank conflicts\n",
		res.Counters.Loads, 100*res.L1MissRate(), res.Counters.BankConflicts)
	fmt.Printf("  %d load-hit mis-speculations, %d instructions reissued\n",
		res.Counters.LoadMisspecs, res.Counters.DataReissues)
	fmt.Printf("  IQ: %.1f entries occupied on average, %.1f of them issued-and-retained\n\n",
		res.IQOccupancy, res.IQRetained)

	fmt.Println("memory dependence loop (issue <- store address resolution):")
	fmt.Printf("  %d order traps, %d loads forwarded from the store queue\n\n",
		res.Counters.MemOrderTraps, res.Counters.StoreForwards)

	fmt.Println("useless work (the paper's cost of loose-loop mis-speculation):")
	fmt.Printf("  %d instructions of discarded work\n\n", res.UselessWork())

	fmt.Println("where the cycles went:")
	fmt.Printf("  %s\n", res.Cycles)
}
