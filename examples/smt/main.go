// Smt demonstrates the paper's Section 3.1 observation about multi-threaded
// execution: when one thread mis-speculates on a loose loop, the other
// thread keeps the pipeline busy, so an SMT pair is less sensitive to
// pipeline length than its worst component program.
//
//	go run ./examples/smt
package main

import (
	"fmt"
	"log"

	"loosesim"
)

const (
	warmup  = 100_000
	measure = 150_000
)

func lossAt18(bench string) float64 {
	ipc := func(lat int) float64 {
		cfg, err := loosesim.DefaultMachine(bench)
		if err != nil {
			log.Fatal(err)
		}
		cfg.DecIQLat, cfg.IQExLat = lat, lat
		cfg.WarmupInstructions, cfg.MeasureInstructions = warmup, measure
		res, err := loosesim.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res.IPC()
	}
	return 1 - ipc(9)/ipc(3) // 18-cycle vs 6-cycle decode->execute
}

func main() {
	log.SetFlags(0)

	pairs := [][3]string{
		{"m88-comp", "m88", "comp"},
		{"go-su2cor", "go", "su2cor"},
		{"apsi-swim", "apsi", "swim"},
	}
	fmt.Println("performance loss from growing decode->execute 6 -> 18 cycles:")
	fmt.Printf("%-10s  %8s  %8s  %8s\n", "pair", "pair", "threadA", "threadB")
	for _, p := range pairs {
		lp, la, lb := lossAt18(p[0]), lossAt18(p[1]), lossAt18(p[2])
		fmt.Printf("%-10s  %7.1f%%  %7.1f%%  %7.1f%%\n", p[0], 100*lp, 100*la, 100*lb)
	}

	fmt.Println()
	fmt.Println("also note throughput: an SMT pair retires more per cycle than either")
	fmt.Println("thread alone, because mis-speculation recovery on one thread leaves")
	fmt.Println("issue slots the other thread can use.")
	for _, p := range pairs[:1] {
		ipc := func(bench string) float64 {
			cfg, err := loosesim.DefaultMachine(bench)
			if err != nil {
				log.Fatal(err)
			}
			cfg.WarmupInstructions, cfg.MeasureInstructions = warmup, measure
			res, err := loosesim.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			return res.IPC()
		}
		fmt.Printf("%s: pair IPC %.2f vs %s %.2f and %s %.2f alone\n",
			p[0], ipc(p[0]), p[1], ipc(p[1]), p[2], ipc(p[2]))
	}
}
