// Drastudy compares the Distributed Register Algorithm against the base
// machine across register-file latencies (the paper's Figure 8) and prints
// where each benchmark's operands actually came from (Figure 9): register
// pre-read, forwarding buffer, cluster register cache, or operand miss.
//
// It shows both sides of the paper's result: load-bound programs gain up to
// several percent because the load resolution loop shrinks, while apsi
// loses because its operand-miss rate makes the new operand resolution loop
// expensive.
//
//	go run ./examples/drastudy
package main

import (
	"fmt"
	"log"

	"loosesim"
)

const (
	warmup  = 100_000
	measure = 150_000
)

func run(cfg loosesim.Config) *loosesim.Result {
	cfg.WarmupInstructions, cfg.MeasureInstructions = warmup, measure
	res, err := loosesim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	log.SetFlags(0)
	benches := []string{"swim", "comp", "apsi"}

	fmt.Println("== DRA speedup over the base machine (Figure 8 style) ==")
	for _, b := range benches {
		fmt.Printf("%-6s", b)
		for _, rf := range []int{3, 5, 7} {
			baseCfg, err := loosesim.BaseMachine(b, rf)
			if err != nil {
				log.Fatal(err)
			}
			draCfg, err := loosesim.DRAMachine(b, rf)
			if err != nil {
				log.Fatal(err)
			}
			base, dra := run(baseCfg), run(draCfg)
			fmt.Printf("  rf%d %+5.1f%%", rf, 100*(dra.IPC()/base.IPC()-1))
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("== operand delivery under the 7_3 DRA (Figure 9 style) ==")
	fmt.Printf("%-6s  %8s  %8s  %8s  %8s\n", "", "pre-read", "fwdbuf", "crc", "miss")
	for _, b := range benches {
		cfg, err := loosesim.DRAMachine(b, 5)
		if err != nil {
			log.Fatal(err)
		}
		res := run(cfg)
		pr, fw, crc, miss := res.OperandShare()
		fmt.Printf("%-6s  %7.1f%%  %7.1f%%  %7.1f%%  %7.3f%%\n", b, 100*pr, 100*fw, 100*crc, 100*miss)
	}

	fmt.Println()
	fmt.Println("apsi is the cautionary tale: every instruction with input operands")
	fmt.Println("initiates the operand resolution loop, so even a ~2% miss rate buys")
	fmt.Println("enough reissue work and front-end stall to outweigh the shorter pipe.")
}
