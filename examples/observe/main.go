// Observe runs one DRA machine with the observability layer attached and
// shows what the end-of-run aggregates hide: the per-loop delay table
// (which loose loop costs how many cycles) and the interval time series
// (where in the run the operand loop misbehaved).
//
//	go run ./examples/observe
package main

import (
	"fmt"
	"log"
	"sort"

	"loosesim"
)

func main() {
	log.SetFlags(0)

	cfg, err := loosesim.DRAMachine("apsi", 5)
	if err != nil {
		log.Fatal(err)
	}
	cfg.WarmupInstructions = 50_000
	cfg.MeasureInstructions = 150_000

	// Two in-process sinks: a per-loop delay aggregator on the event
	// stream, and a slice collector on the interval series.
	delays := loosesim.NewLoopDelays(0)
	var series []loosesim.Interval
	cfg.Events = delays
	cfg.Intervals = loosesim.IntervalFunc(func(iv loosesim.Interval) { series = append(series, iv) })
	cfg.SampleInterval = 5_000

	res, err := loosesim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("apsi, DRA, 5-cycle register file: IPC %.3f over %d cycles\n\n",
		res.IPC(), res.Counters.Cycles)

	fmt.Println("per-loop delay table (whole run, warmup included):")
	fmt.Print(delays.Table())
	fmt.Println()

	// Rank intervals by operand reissues to find the operand loop's worst
	// bursts — the behaviour Figure 9's whole-run shares average away.
	sort.SliceStable(series, func(i, j int) bool {
		return series[i].OperandReissues > series[j].OperandReissues
	})
	fmt.Println("worst operand-reissue bursts (5k-cycle intervals):")
	fmt.Printf("%9s  %15s  %9s  %6s  %10s  %9s\n",
		"interval", "cycles", "reissues", "ipc", "miss-share", "iq-occ")
	top := series
	if len(top) > 5 {
		top = top[:5]
	}
	for _, iv := range top {
		fmt.Printf("%9d  %7d-%7d  %9d  %6.3f  %9.3f%%  %9.1f\n",
			iv.Index, iv.StartCycle, iv.EndCycle, iv.OperandReissues,
			iv.IPC, 100*iv.MissShare, iv.IQOccupancy)
	}

	fmt.Println()
	fmt.Println("reading the output:")
	fmt.Println(" - cycles-lost ranks the loops; the operand loop's cost is its")
	fmt.Println("   reissue delay times traversal count, exactly as in Section 5;")
	fmt.Println(" - reissue bursts line up with low-IPC, high-occupancy intervals:")
	fmt.Println("   operand misses stall the front end and back up the queue.")
}
