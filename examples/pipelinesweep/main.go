// Pipelinesweep reproduces the spirit of the paper's Figures 4 and 5 on a
// small benchmark subset: first it lengthens the decode→execute portion of
// the pipeline, then it holds the total fixed and moves cycles between
// DEC-IQ and IQ-EX — showing that "not all pipelines are created equal".
//
//	go run ./examples/pipelinesweep
package main

import (
	"fmt"
	"log"

	"loosesim"
)

const (
	warmup  = 100_000
	measure = 150_000
)

func ipcFor(bench string, decIQ, iqEx int) float64 {
	cfg, err := loosesim.DefaultMachine(bench)
	if err != nil {
		log.Fatal(err)
	}
	cfg.DecIQLat, cfg.IQExLat = decIQ, iqEx
	cfg.WarmupInstructions, cfg.MeasureInstructions = warmup, measure
	res, err := loosesim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return res.IPC()
}

func main() {
	log.SetFlags(0)
	benches := []string{"gcc", "swim", "hydro"}

	fmt.Println("== growing the decode->execute pipeline (Figure 4 style) ==")
	fmt.Println("   speedup relative to a 6-cycle decode->execute region")
	lengths := [][2]int{{3, 3}, {5, 5}, {7, 7}, {9, 9}}
	for _, b := range benches {
		base := ipcFor(b, 3, 3)
		fmt.Printf("%-8s", b)
		for _, l := range lengths {
			fmt.Printf("  %2dcyc %.3f", l[0]+l[1], ipcFor(b, l[0], l[1])/base)
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("== fixed 12-cycle total, moving cycles out of IQ-EX (Figure 5 style) ==")
	fmt.Println("   speedup relative to the 3_9 split (DEC-IQ_IQ-EX)")
	splits := [][2]int{{3, 9}, {5, 7}, {7, 5}, {9, 3}}
	for _, b := range benches {
		base := ipcFor(b, 3, 9)
		fmt.Printf("%-8s", b)
		for _, s := range splits {
			fmt.Printf("  %d_%d %.3f", s[0], s[1], ipcFor(b, s[0], s[1])/base)
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("expected shape: gcc is hurt by total length (branch loop spans it all);")
	fmt.Println("swim prefers a short IQ-EX (load loop lives there); hydro barely cares")
	fmt.Println("(its time goes to main memory, dwarfing any loop delay).")
}
