// Loopinventory prints the paper's Section 1 analysis for each benchmark:
// for every loose loop in the machine, the frequency of loop occurrence,
// the mis-speculation rate, and the useless work done — the product the
// paper identifies as the first-order determinant of performance lost.
//
//	go run ./examples/loopinventory
package main

import (
	"fmt"
	"log"

	"loosesim"
)

func main() {
	log.SetFlags(0)
	benches := []string{"gcc", "m88", "swim", "turb3d", "apsi"}

	var cfgs []loosesim.Config
	for _, b := range benches {
		cfg, err := loosesim.DefaultMachine(b)
		if err != nil {
			log.Fatal(err)
		}
		cfg.WarmupInstructions = 100_000
		cfg.MeasureInstructions = 150_000
		cfgs = append(cfgs, cfg)
	}
	results, err := loosesim.RunAll(cfgs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("loose-loop inventory (base machine; per 1000 retired instructions)")
	fmt.Println()
	fmt.Printf("%-8s  %28s  %28s  %22s  %12s\n",
		"", "branch resolution loop", "load resolution loop", "memory trap loops", "useless work")
	fmt.Printf("%-8s  %9s %8s %9s  %9s %8s %9s  %10s %11s  %12s\n",
		"bench", "branches", "misp%", "killed", "loads", "misspec%", "reissued", "TLB traps", "order traps", "instrs")
	for i, b := range benches {
		c := results[i].Counters
		per := func(v uint64) float64 { return 1000 * float64(v) / float64(c.Retired) }
		fmt.Printf("%-8s  %9.1f %7.2f%% %9.1f  %9.1f %7.2f%% %9.1f  %10.2f %11.2f  %12.1f\n",
			b,
			per(c.Branches), 100*results[i].MispredictRate(), per(c.SquashedIssued),
			per(c.Loads), 100*float64(c.LoadMisspecs)/float64(max(c.Loads, 1)), per(c.DataReissues),
			per(c.TLBMissTraps), per(c.MemOrderTraps),
			per(results[i].UselessWork()))
	}

	fmt.Println()
	fmt.Println("reading the table with the paper's Section 1 lens:")
	fmt.Println(" - useless work per event = loop delay + recovery time + queuing;")
	fmt.Println(" - events = frequency of occurrence x mis-speculation rate;")
	fmt.Println(" - gcc pays on the branch loop (frequent + mispredicted),")
	fmt.Println("   swim on the load loop (frequent + missing),")
	fmt.Println("   turb3d adds the memory trap loop (TLB), and m88 pays little anywhere.")
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
