package loosesim_test

import (
	"strings"
	"testing"

	"loosesim"
)

func TestBenchmarksList(t *testing.T) {
	b := loosesim.Benchmarks()
	if len(b) != 13 {
		t.Fatalf("benchmark count = %d, want 13", len(b))
	}
	for _, name := range b {
		if _, err := loosesim.Workload(name); err != nil {
			t.Errorf("Workload(%q): %v", name, err)
		}
	}
}

func TestWorkloadUnknown(t *testing.T) {
	if _, err := loosesim.Workload("zork"); err == nil {
		t.Error("unknown workload must error")
	} else if !strings.Contains(err.Error(), "zork") {
		t.Errorf("error should name the benchmark: %v", err)
	}
}

func TestMachineConstructors(t *testing.T) {
	base, err := loosesim.BaseMachine("gcc", 5)
	if err != nil {
		t.Fatal(err)
	}
	if base.UseDRA || base.IQExLat != 7 || base.DecIQLat != 5 {
		t.Errorf("BaseMachine(gcc,5) = %d_%d dra=%v", base.DecIQLat, base.IQExLat, base.UseDRA)
	}
	dra, err := loosesim.DRAMachine("gcc", 5)
	if err != nil {
		t.Fatal(err)
	}
	if !dra.UseDRA || dra.IQExLat != 3 || dra.DecIQLat != 7 {
		t.Errorf("DRAMachine(gcc,5) = %d_%d dra=%v", dra.DecIQLat, dra.IQExLat, dra.UseDRA)
	}
	def, err := loosesim.DefaultMachine("swim")
	if err != nil {
		t.Fatal(err)
	}
	if def.DecIQLat != 5 || def.IQExLat != 5 {
		t.Error("DefaultMachine must be the 5_5 base")
	}
	if _, err := loosesim.BaseMachine("nope", 3); err == nil {
		t.Error("unknown benchmark must error")
	}
}

func TestRunProducesResult(t *testing.T) {
	cfg, err := loosesim.DefaultMachine("m88")
	if err != nil {
		t.Fatal(err)
	}
	cfg.WarmupInstructions = 10_000
	cfg.MeasureInstructions = 20_000
	res, err := loosesim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC() <= 0 {
		t.Error("IPC must be positive")
	}
	if res.Benchmark != "m88" {
		t.Errorf("benchmark label = %q", res.Benchmark)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	cfg, _ := loosesim.DefaultMachine("m88")
	cfg.IQEntries = 0
	if _, err := loosesim.Run(cfg); err == nil {
		t.Error("bad config must error")
	}
}

func TestRunAllOrderAndParity(t *testing.T) {
	mk := func(bench string) loosesim.Config {
		cfg, err := loosesim.DefaultMachine(bench)
		if err != nil {
			t.Fatal(err)
		}
		cfg.WarmupInstructions = 5_000
		cfg.MeasureInstructions = 10_000
		return cfg
	}
	cfgs := []loosesim.Config{mk("gcc"), mk("m88"), mk("swim")}
	results, err := loosesim.RunAll(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("result count = %d", len(results))
	}
	for i, want := range []string{"gcc", "m88", "swim"} {
		if results[i].Benchmark != want {
			t.Errorf("result %d = %q, want %q (order must be preserved)", i, results[i].Benchmark, want)
		}
	}
	// Parity with a serial run of the same config (determinism across the
	// concurrent path).
	serial, err := loosesim.Run(cfgs[0])
	if err != nil {
		t.Fatal(err)
	}
	if serial.Counters != results[0].Counters {
		t.Error("RunAll result differs from serial Run for identical config")
	}
}

func TestRunAllBadConfig(t *testing.T) {
	cfg, _ := loosesim.DefaultMachine("gcc")
	bad := cfg
	bad.FetchWidth = 0
	if _, err := loosesim.RunAll([]loosesim.Config{cfg, bad}); err == nil {
		t.Error("RunAll must reject a bad config")
	}
}
