// Package loosesim is a cycle-level reproduction of "Loose Loops Sink
// Chips" (Borch, Tune, Manne, Emer — HPCA 2002): an 8-wide clustered SMT
// out-of-order processor simulator built to study micro-architectural
// loops — the branch resolution loop, the load resolution loop, and the
// operand resolution loop introduced by the paper's contribution, the
// Distributed Register Algorithm (DRA).
//
// The package is a thin facade over the internal simulator. Typical use:
//
//	cfg, _ := loosesim.BaseMachine("gcc", 3)
//	res, _ := loosesim.Run(cfg)
//	fmt.Println(res.IPC())
//
// Configurations are plain structs; adjust any field before Run. The
// DRAMachine/BaseMachine constructors implement the paper's Section 6
// latency arithmetic for a given register file access time.
package loosesim

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"loosesim/internal/obs"
	"loosesim/internal/pipeline"
	"loosesim/internal/workload"
)

// Config describes one simulation; see pipeline.Config for all fields.
type Config = pipeline.Config

// Result is a simulation's measurement-window outcome.
type Result = pipeline.Result

// Load-recovery policies for the load resolution loop.
const (
	LoadReissue = pipeline.LoadReissue
	LoadRefetch = pipeline.LoadRefetch
	LoadStall   = pipeline.LoadStall
)

// Memory dependence loop policies.
const (
	MemDepStoreWait    = pipeline.MemDepStoreWait
	MemDepBlind        = pipeline.MemDepBlind
	MemDepConservative = pipeline.MemDepConservative
)

// CycleStack is the cycle-accounting breakdown attached to every Result.
type CycleStack = pipeline.CycleStack

// Benchmarks returns every available benchmark name in the paper's plotting
// order: four integer, six floating point, three SMT pairs.
func Benchmarks() []string { return workload.PaperOrder() }

// Workload looks up a benchmark by name.
func Workload(name string) (workload.Workload, error) { return workload.ByName(name) }

// DefaultMachine returns the paper's base machine (DEC-IQ 5, IQ-EX 5,
// 3-cycle register file) running the named benchmark.
func DefaultMachine(bench string) (Config, error) {
	wl, err := workload.ByName(bench)
	if err != nil {
		return Config{}, err
	}
	return pipeline.DefaultConfig(wl), nil
}

// BaseMachine returns the base (non-DRA) machine for a register file access
// latency of regReadLat cycles: IQ-EX = 2 + regReadLat, DEC-IQ = 5.
func BaseMachine(bench string, regReadLat int) (Config, error) {
	wl, err := workload.ByName(bench)
	if err != nil {
		return Config{}, err
	}
	return pipeline.BaseConfigRF(wl, regReadLat), nil
}

// DRAMachine returns the DRA machine for a register file access latency of
// regReadLat cycles: IQ-EX = 3, DEC-IQ = max(5, 2 + regReadLat).
func DRAMachine(bench string, regReadLat int) (Config, error) {
	wl, err := workload.ByName(bench)
	if err != nil {
		return Config{}, err
	}
	return pipeline.DRAConfigRF(wl, regReadLat), nil
}

// Observability. Attach sinks to Config.Events / Config.Intervals before
// Run; probes are strictly passive and never change simulation outcomes.
// See the internal/obs package documentation for the event and interval
// schemas.
type (
	// Event is one loose-loop traversal record.
	Event = obs.Event
	// EventKind names the loop a traversal belongs to.
	EventKind = obs.EventKind
	// EventSink receives loop-event records in cycle order.
	EventSink = obs.EventSink
	// EventFunc adapts a function to EventSink.
	EventFunc = obs.EventFunc
	// Interval is one sample of the per-interval time series.
	Interval = obs.Interval
	// IntervalSink receives the interval time series in index order.
	IntervalSink = obs.IntervalSink
	// IntervalFunc adapts a function to IntervalSink.
	IntervalFunc = obs.IntervalFunc
	// LoopDelays aggregates events into per-loop delay histograms.
	LoopDelays = obs.LoopDelays
)

// NewLoopDelays returns an in-process per-loop delay aggregator (bound <= 0
// selects the default histogram bound).
func NewLoopDelays(bound int) *LoopDelays { return obs.NewLoopDelays(bound) }

// NewEventWriter returns a batching JSONL event writer; call Flush and
// check its error once the run completes.
func NewEventWriter(w io.Writer, capacity int) *obs.RingWriter {
	return obs.NewRingWriter(w, capacity)
}

// NewIntervalCSV returns a CSV interval writer; check Err after the run.
func NewIntervalCSV(w io.Writer) *obs.IntervalCSV { return obs.NewIntervalCSV(w) }

// TeeEvents fans an event stream out to several sinks.
func TeeEvents(sinks ...EventSink) EventSink { return obs.Tee(sinks...) }

// ErrCycleBudget is returned by RunContext when Config.CycleBudget expires
// before the measurement window completes.
var ErrCycleBudget = pipeline.ErrCycleBudget

// Run executes one simulation to completion.
func Run(cfg Config) (*Result, error) {
	m, err := pipeline.New(cfg)
	if err != nil {
		return nil, err
	}
	return m.Run(), nil
}

// RunContext executes one simulation under ctx: cancellation (or a
// deadline) aborts the run with ctx.Err() within a few thousand simulated
// cycles, and a positive Config.CycleBudget aborts it with ErrCycleBudget.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	m, err := pipeline.New(cfg)
	if err != nil {
		return nil, err
	}
	return m.RunContext(ctx)
}

// runOne builds and runs a single batch entry. It is a variable so the
// batch tests can wrap it to observe construction/teardown (e.g. to assert
// the pool's peak live-machine count) without touching the pool itself.
var runOne = func(ctx context.Context, cfg Config) (*Result, error) {
	return RunContext(ctx, cfg)
}

// RunAll executes a batch of independent simulations on a bounded worker
// pool and returns results in input order. Every configuration is
// validated up front, so a bad config fails the batch before any
// simulation starts; each Machine is constructed only when a worker picks
// its config up, so peak memory and goroutine count are O(GOMAXPROCS)
// regardless of batch size.
func RunAll(cfgs []Config) ([]*Result, error) {
	return RunAllContext(context.Background(), cfgs)
}

// RunAllContext is RunAll under a context: cancelling ctx aborts running
// simulations cooperatively and skips unstarted ones, and the batch
// returns the first error in input order. A successful batch has every
// result non-nil, in input order.
func RunAllContext(ctx context.Context, cfgs []Config) ([]*Result, error) {
	for i := range cfgs {
		if err := cfgs[i].Validate(); err != nil {
			return nil, fmt.Errorf("config %d: %w", i, err)
		}
	}
	results := make([]*Result, len(cfgs))
	errs := make([]error, len(cfgs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cfgs) {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = fmt.Errorf("config %d: %w", i, err)
					continue
				}
				res, err := runOne(ctx, cfgs[i])
				if err != nil {
					errs[i] = fmt.Errorf("config %d: %w", i, err)
					continue
				}
				results[i] = res
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
