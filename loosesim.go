// Package loosesim is a cycle-level reproduction of "Loose Loops Sink
// Chips" (Borch, Tune, Manne, Emer — HPCA 2002): an 8-wide clustered SMT
// out-of-order processor simulator built to study micro-architectural
// loops — the branch resolution loop, the load resolution loop, and the
// operand resolution loop introduced by the paper's contribution, the
// Distributed Register Algorithm (DRA).
//
// The package is a thin facade over the internal simulator. Typical use:
//
//	cfg, _ := loosesim.BaseMachine("gcc", 3)
//	res, _ := loosesim.Run(cfg)
//	fmt.Println(res.IPC())
//
// Configurations are plain structs; adjust any field before Run. The
// DRAMachine/BaseMachine constructors implement the paper's Section 6
// latency arithmetic for a given register file access time.
package loosesim

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"loosesim/internal/obs"
	"loosesim/internal/pipeline"
	"loosesim/internal/workload"
)

// Config describes one simulation; see pipeline.Config for all fields.
type Config = pipeline.Config

// Result is a simulation's measurement-window outcome.
type Result = pipeline.Result

// Load-recovery policies for the load resolution loop.
const (
	LoadReissue = pipeline.LoadReissue
	LoadRefetch = pipeline.LoadRefetch
	LoadStall   = pipeline.LoadStall
)

// Memory dependence loop policies.
const (
	MemDepStoreWait    = pipeline.MemDepStoreWait
	MemDepBlind        = pipeline.MemDepBlind
	MemDepConservative = pipeline.MemDepConservative
)

// CycleStack is the cycle-accounting breakdown attached to every Result.
type CycleStack = pipeline.CycleStack

// Benchmarks returns every available benchmark name in the paper's plotting
// order: four integer, six floating point, three SMT pairs.
func Benchmarks() []string { return workload.PaperOrder() }

// Workload looks up a benchmark by name.
func Workload(name string) (workload.Workload, error) { return workload.ByName(name) }

// DefaultMachine returns the paper's base machine (DEC-IQ 5, IQ-EX 5,
// 3-cycle register file) running the named benchmark.
func DefaultMachine(bench string) (Config, error) {
	wl, err := workload.ByName(bench)
	if err != nil {
		return Config{}, err
	}
	return pipeline.DefaultConfig(wl), nil
}

// BaseMachine returns the base (non-DRA) machine for a register file access
// latency of regReadLat cycles: IQ-EX = 2 + regReadLat, DEC-IQ = 5.
func BaseMachine(bench string, regReadLat int) (Config, error) {
	wl, err := workload.ByName(bench)
	if err != nil {
		return Config{}, err
	}
	return pipeline.BaseConfigRF(wl, regReadLat), nil
}

// DRAMachine returns the DRA machine for a register file access latency of
// regReadLat cycles: IQ-EX = 3, DEC-IQ = max(5, 2 + regReadLat).
func DRAMachine(bench string, regReadLat int) (Config, error) {
	wl, err := workload.ByName(bench)
	if err != nil {
		return Config{}, err
	}
	return pipeline.DRAConfigRF(wl, regReadLat), nil
}

// Observability. Attach sinks to Config.Events / Config.Intervals before
// Run; probes are strictly passive and never change simulation outcomes.
// See the internal/obs package documentation for the event and interval
// schemas.
type (
	// Event is one loose-loop traversal record.
	Event = obs.Event
	// EventKind names the loop a traversal belongs to.
	EventKind = obs.EventKind
	// EventSink receives loop-event records in cycle order.
	EventSink = obs.EventSink
	// EventFunc adapts a function to EventSink.
	EventFunc = obs.EventFunc
	// Interval is one sample of the per-interval time series.
	Interval = obs.Interval
	// IntervalSink receives the interval time series in index order.
	IntervalSink = obs.IntervalSink
	// IntervalFunc adapts a function to IntervalSink.
	IntervalFunc = obs.IntervalFunc
	// LoopDelays aggregates events into per-loop delay histograms.
	LoopDelays = obs.LoopDelays
)

// NewLoopDelays returns an in-process per-loop delay aggregator (bound <= 0
// selects the default histogram bound).
func NewLoopDelays(bound int) *LoopDelays { return obs.NewLoopDelays(bound) }

// NewEventWriter returns a batching JSONL event writer; call Flush and
// check its error once the run completes.
func NewEventWriter(w io.Writer, capacity int) *obs.RingWriter {
	return obs.NewRingWriter(w, capacity)
}

// NewIntervalCSV returns a CSV interval writer; check Err after the run.
func NewIntervalCSV(w io.Writer) *obs.IntervalCSV { return obs.NewIntervalCSV(w) }

// TeeEvents fans an event stream out to several sinks.
func TeeEvents(sinks ...EventSink) EventSink { return obs.Tee(sinks...) }

// Run executes one simulation to completion.
func Run(cfg Config) (*Result, error) {
	m, err := pipeline.New(cfg)
	if err != nil {
		return nil, err
	}
	return m.Run(), nil
}

// RunAll executes a batch of independent simulations, fanning out across
// CPUs, and returns results in input order. The first configuration error
// aborts the batch; simulations already running complete first.
func RunAll(cfgs []Config) ([]*Result, error) {
	machines := make([]*pipeline.Machine, len(cfgs))
	for i, cfg := range cfgs {
		m, err := pipeline.New(cfg)
		if err != nil {
			return nil, fmt.Errorf("config %d: %w", i, err)
		}
		machines[i] = m
	}
	results := make([]*Result, len(cfgs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, m := range machines {
		wg.Add(1)
		go func(i int, m *pipeline.Machine) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = m.Run()
		}(i, m)
	}
	wg.Wait()
	return results, nil
}
